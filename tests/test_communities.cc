// Control-community handling in the route server (bgp/communities.h) and
// the RIB-derived policy helpers of §3.2.
#include <gtest/gtest.h>

#include "sdx/bgp_filter.h"

namespace sdx::rs {
namespace {

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

bgp::BgpUpdate Announce(AsNumber from, const char* prefix,
                        std::vector<std::uint32_t> communities = {},
                        std::vector<bgp::AsNumber> path = {}) {
  bgp::Announcement a;
  a.from_as = from;
  a.route.prefix = Pfx(prefix);
  a.route.as_path =
      path.empty() ? std::vector<bgp::AsNumber>{from} : std::move(path);
  a.route.communities = std::move(communities);
  return bgp::BgpUpdate{a};
}

class CommunityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.SetRouteServerAs(64999);
    server_.RegisterParticipant(100, net::IPv4Address(1, 0, 0, 1));
    server_.RegisterParticipant(200, net::IPv4Address(2, 0, 0, 1));
    server_.RegisterParticipant(300, net::IPv4Address(3, 0, 0, 1));
  }
  RouteServer server_;
};

TEST(CommunityHelpers, EncodeDecode) {
  const std::uint32_t c = bgp::MakeCommunity(64999, 200);
  EXPECT_EQ(bgp::CommunityHigh(c), 64999);
  EXPECT_EQ(bgp::CommunityLow(c), 200);
  EXPECT_EQ(bgp::DenyPeer(300), bgp::MakeCommunity(0, 300));
  EXPECT_EQ(bgp::OnlyPeer(64999, 200), c);
}

TEST(CommunityHelpers, PermitLogic) {
  using bgp::CommunitiesPermitExport;
  std::vector<std::uint32_t> none;
  EXPECT_TRUE(CommunitiesPermitExport(none, 100, 64999));

  std::vector<std::uint32_t> no_export = {bgp::kNoExport};
  EXPECT_FALSE(CommunitiesPermitExport(no_export, 100, 64999));

  std::vector<std::uint32_t> deny_100 = {bgp::DenyPeer(100)};
  EXPECT_FALSE(CommunitiesPermitExport(deny_100, 100, 64999));
  EXPECT_TRUE(CommunitiesPermitExport(deny_100, 200, 64999));

  std::vector<std::uint32_t> only_200 = {bgp::OnlyPeer(64999, 200)};
  EXPECT_TRUE(CommunitiesPermitExport(only_200, 200, 64999));
  EXPECT_FALSE(CommunitiesPermitExport(only_200, 100, 64999));
}

TEST_F(CommunityTest, NoExportHidesFromEveryone) {
  server_.HandleUpdate(Announce(100, "10.0.0.0/8", {bgp::kNoExport}));
  EXPECT_EQ(server_.BestRoute(200, Pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(server_.BestRoute(300, Pfx("10.0.0.0/8")), nullptr);
}

TEST_F(CommunityTest, DenyPeerCommunityHidesFromOnePeer) {
  server_.HandleUpdate(Announce(100, "10.0.0.0/8", {bgp::DenyPeer(200)}));
  EXPECT_EQ(server_.BestRoute(200, Pfx("10.0.0.0/8")), nullptr);
  EXPECT_NE(server_.BestRoute(300, Pfx("10.0.0.0/8")), nullptr);
}

TEST_F(CommunityTest, OnlyPeerCommunityRestrictsToAllowList) {
  server_.HandleUpdate(
      Announce(100, "10.0.0.0/8", {bgp::OnlyPeer(64999, 300)}));
  EXPECT_EQ(server_.BestRoute(200, Pfx("10.0.0.0/8")), nullptr);
  EXPECT_NE(server_.BestRoute(300, Pfx("10.0.0.0/8")), nullptr);
}

TEST_F(CommunityTest, CommunityChangeOnReannouncementTakesEffect) {
  server_.HandleUpdate(Announce(100, "10.0.0.0/8"));
  EXPECT_NE(server_.BestRoute(200, Pfx("10.0.0.0/8")), nullptr);
  auto changes =
      server_.HandleUpdate(Announce(100, "10.0.0.0/8", {bgp::DenyPeer(200)}));
  EXPECT_FALSE(changes.empty());
  EXPECT_EQ(server_.BestRoute(200, Pfx("10.0.0.0/8")), nullptr);
  EXPECT_NE(server_.BestRoute(300, Pfx("10.0.0.0/8")), nullptr);
}

TEST_F(CommunityTest, CommunityFilteredRoutesExcludedFromEligibility) {
  server_.HandleUpdate(Announce(200, "10.1.0.0/16", {bgp::DenyPeer(100)}));
  server_.HandleUpdate(Announce(200, "10.2.0.0/16"));
  core::OutboundClause clause;
  clause.to = 200;
  auto eligible = core::EligiblePrefixes(server_, 100, clause);
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_EQ(eligible[0], Pfx("10.2.0.0/16"));
  EXPECT_FALSE(server_.ExportsTo(200, 100, Pfx("10.1.0.0/16")));
}

TEST_F(CommunityTest, FallbackToAllowedRoute) {
  // 100's route is hidden from 300 by community; 200's route, though worse,
  // becomes 300's best.
  server_.HandleUpdate(Announce(100, "10.0.0.0/8", {bgp::DenyPeer(300)},
                                {100}));
  server_.HandleUpdate(Announce(200, "10.0.0.0/8", {}, {200, 900, 901}));
  const auto* best = server_.BestRoute(300, Pfx("10.0.0.0/8"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->peer_as, 200u);
  // 200 itself still prefers 100's (shorter) route.
  best = server_.BestRoute(200, Pfx("10.0.0.0/8"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->peer_as, 100u);
}

class RibFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.RegisterParticipant(100, net::IPv4Address(1, 0, 0, 1));
    server_.RegisterParticipant(200, net::IPv4Address(2, 0, 0, 1));
    // Two YouTube-originated prefixes (origin AS 43515) and one other.
    server_.HandleUpdate(
        Announce(200, "208.65.152.0/22", {}, {200, 43515}));
    server_.HandleUpdate(
        Announce(200, "208.117.224.0/19", {}, {200, 3356, 43515}));
    server_.HandleUpdate(Announce(200, "8.8.8.0/24", {}, {200, 15169}));
  }
  RouteServer server_;
};

TEST_F(RibFilterTest, PrefixesMatchingAsPath) {
  auto pattern = bgp::AsPathPattern::Compile(".*43515$");
  ASSERT_TRUE(pattern);
  auto prefixes = core::PrefixesMatchingAsPath(server_, 100, *pattern);
  EXPECT_EQ(prefixes.size(), 2u);
}

TEST_F(RibFilterTest, PrefixesOriginatedBy) {
  EXPECT_EQ(core::PrefixesOriginatedBy(server_, 100, 43515).size(), 2u);
  EXPECT_EQ(core::PrefixesOriginatedBy(server_, 100, 15169).size(), 1u);
  EXPECT_EQ(core::PrefixesOriginatedBy(server_, 100, 99999).size(), 0u);
  // An unknown receiver sees nothing.
  EXPECT_EQ(core::PrefixesOriginatedBy(server_, 999, 43515).size(), 0u);
}

TEST_F(RibFilterTest, SrcFromAsPathPredicate) {
  auto pattern = bgp::AsPathPattern::Compile(".*43515$");
  ASSERT_TRUE(pattern);
  auto predicate = core::SrcFromAsPath(server_, 100, *pattern);
  net::PacketHeader from_youtube;
  from_youtube.src_ip = net::IPv4Address(208, 65, 153, 1);
  EXPECT_TRUE(predicate.Eval(from_youtube));
  net::PacketHeader from_google;
  from_google.src_ip = net::IPv4Address(8, 8, 8, 8);
  EXPECT_FALSE(predicate.Eval(from_google));
}

}  // namespace
}  // namespace sdx::rs
