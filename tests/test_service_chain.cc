// Service chaining through middlebox sequences (§8).
#include <gtest/gtest.h>

#include "sdx/runtime.h"

namespace sdx::core {
namespace {

using policy::Predicate;

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

class ServiceChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_.AddParticipant(100, 1);  // sender
    // AS 200: border router (port 0), scrubber (port 1), DPI box (port 2).
    runtime_.AddParticipant(200, 3);
    runtime_.AnnouncePrefix(200, Pfx("203.0.113.0/24"));

    InboundClause chained;
    chained.match = Predicate::DstPort(80);
    chained.chain = {ChainHop{200, 1}, ChainHop{200, 2}};
    chained.port_index = 0;
    runtime_.SetInboundPolicy(200, {chained});
    runtime_.FullCompile();
  }

  net::Packet WebPacket() {
    net::Packet packet;
    packet.header.src_ip = net::IPv4Address(10, 0, 0, 1);
    packet.header.dst_ip = net::IPv4Address(203, 0, 113, 7);
    packet.header.proto = net::kProtoTcp;
    packet.header.dst_port = 80;
    packet.size_bytes = 400;
    return packet;
  }

  net::PortId PortOf(int index) {
    return runtime_.topology().PhysicalPortOf(200, index).id;
  }

  SdxRuntime runtime_;
};

TEST_F(ServiceChainTest, TraversesEveryHopInOrder) {
  // Stage 0: client traffic lands on the scrubber.
  auto emissions = runtime_.InjectFromParticipant(100, WebPacket());
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(1));
  EXPECT_EQ(emissions[0].packet.header.dst_mac,
            runtime_.topology().PhysicalPortOf(200, 1).mac);

  // Stage 1: the scrubber re-injects; traffic moves to the DPI box.
  emissions = runtime_.ReinjectFromPort(PortOf(1), emissions[0].packet);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(2));

  // Stage 2: the DPI box re-injects; final delivery on the border port
  // with the real port MAC.
  emissions = runtime_.ReinjectFromPort(PortOf(2), emissions[0].packet);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(0));
  EXPECT_EQ(emissions[0].packet.header.dst_mac,
            runtime_.topology().PhysicalPortOf(200, 0).mac);
}

TEST_F(ServiceChainTest, NonMatchingTrafficBypassesChain) {
  net::Packet ssh = WebPacket();
  ssh.header.dst_port = 22;
  auto emissions = runtime_.InjectFromParticipant(100, ssh);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(0));  // straight to delivery
}

TEST_F(ServiceChainTest, RewritesApplyOnlyAtFinalDelivery) {
  InboundClause chained;
  chained.match = Predicate::DstPort(80);
  chained.chain = {ChainHop{200, 1}};
  chained.rewrites.SetDstIp(net::IPv4Address(203, 0, 113, 99));
  chained.port_index = 0;
  runtime_.SetInboundPolicy(200, {chained});
  runtime_.FullCompile();

  auto emissions = runtime_.InjectFromParticipant(100, WebPacket());
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(1));
  // Not yet rewritten at the middlebox hop.
  EXPECT_EQ(emissions[0].packet.header.dst_ip,
            net::IPv4Address(203, 0, 113, 7));

  emissions = runtime_.ReinjectFromPort(PortOf(1), emissions[0].packet);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(0));
  EXPECT_EQ(emissions[0].packet.header.dst_ip,
            net::IPv4Address(203, 0, 113, 99));
}

TEST_F(ServiceChainTest, ChainAcrossParticipants) {
  // The middlebox may be hosted by a third participant (the paper's
  // video-transcoder-at-port-E1 example).
  runtime_.AddParticipant(300, 1);  // middlebox host
  InboundClause chained;
  chained.match = Predicate::DstPort(80);
  chained.chain = {ChainHop{300, 0}};
  chained.port_index = 0;
  runtime_.SetInboundPolicy(200, {chained});
  runtime_.FullCompile();

  auto emissions = runtime_.InjectFromParticipant(100, WebPacket());
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime_.topology().PhysicalPortOf(300, 0).id);

  emissions = runtime_.ReinjectFromPort(
      runtime_.topology().PhysicalPortOf(300, 0).id, emissions[0].packet);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(0));
}

TEST_F(ServiceChainTest, ChainRulesDoNotLeakIntoHostPolicies) {
  // AS 200 also has an outbound policy; re-injected chain traffic entering
  // on 200's middlebox port must NOT be diverted by it.
  runtime_.AddParticipant(300, 1);
  runtime_.AnnouncePrefix(300, Pfx("198.51.100.0/24"));
  OutboundClause divert;
  divert.match = Predicate::DstPort(80);
  divert.to = 300;
  runtime_.SetOutboundPolicy(200, {divert});
  runtime_.FullCompile();

  auto emissions = runtime_.InjectFromParticipant(100, WebPacket());
  ASSERT_EQ(emissions.size(), 1u);
  ASSERT_EQ(emissions[0].out_port, PortOf(1));
  // Re-injection continues the chain instead of hitting 200's web policy.
  emissions = runtime_.ReinjectFromPort(PortOf(1), emissions[0].packet);
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(2));
}

}  // namespace
}  // namespace sdx::core
