#include "bgp/session.h"

#include <gtest/gtest.h>

namespace sdx::bgp {
namespace {

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

BgpUpdate MakeAnnouncement(AsNumber from, const char* prefix) {
  Announcement a;
  a.from_as = from;
  a.route.prefix = Pfx(prefix);
  a.route.as_path = {from};
  return a;
}

TEST(BgpSession, StartsIdleAndDropsMessages) {
  BgpSession session(100, 65000);
  EXPECT_FALSE(session.established());
  EXPECT_FALSE(session.SendToPeer(MakeAnnouncement(100, "10.0.0.0/8")));
  EXPECT_TRUE(session.DrainFromLocal().empty());
}

TEST(BgpSession, DeliversInOrder) {
  BgpSession session(100, 65000);
  session.Open();
  ASSERT_TRUE(session.SendToPeer(MakeAnnouncement(100, "10.0.0.0/8")));
  ASSERT_TRUE(session.SendToPeer(MakeAnnouncement(100, "20.0.0.0/8")));
  auto received = session.DrainFromLocal();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(UpdatePrefix(received[0]), Pfx("10.0.0.0/8"));
  EXPECT_EQ(UpdatePrefix(received[1]), Pfx("20.0.0.0/8"));
  EXPECT_TRUE(session.DrainFromLocal().empty());  // drained
}

TEST(BgpSession, BidirectionalChannels) {
  BgpSession session(100, 65000);
  session.Open();
  session.SendToLocal(MakeAnnouncement(65000, "30.0.0.0/8"));
  auto from_server = session.DrainFromPeer();
  ASSERT_EQ(from_server.size(), 1u);
  EXPECT_EQ(UpdateFrom(from_server[0]), 65000u);
}

TEST(BgpSession, CloseFlushesAndBumpsGeneration) {
  BgpSession session(100, 65000);
  session.Open();
  session.SendToPeer(MakeAnnouncement(100, "10.0.0.0/8"));
  const auto generation = session.generation();
  session.Close();
  EXPECT_EQ(session.generation(), generation + 1);
  EXPECT_TRUE(session.DrainFromLocal().empty());
  EXPECT_FALSE(session.established());
}

TEST(BgpSession, CountsSentMessages) {
  BgpSession session(100, 65000);
  session.Open();
  session.SendToPeer(MakeAnnouncement(100, "10.0.0.0/8"));
  session.SendToLocal(MakeAnnouncement(65000, "20.0.0.0/8"));
  EXPECT_EQ(session.sent_to_peer(), 1u);
  EXPECT_EQ(session.sent_to_local(), 1u);
}

TEST(BgpUpdate, Accessors) {
  auto update = MakeAnnouncement(100, "10.0.0.0/8");
  EXPECT_TRUE(IsAnnouncement(update));
  EXPECT_EQ(UpdateFrom(update), 100u);
  EXPECT_EQ(UpdatePrefix(update), Pfx("10.0.0.0/8"));

  Withdrawal w;
  w.from_as = 200;
  w.prefix = Pfx("20.0.0.0/8");
  w.time = 42;
  BgpUpdate withdrawal = w;
  EXPECT_FALSE(IsAnnouncement(withdrawal));
  EXPECT_EQ(UpdateFrom(withdrawal), 200u);
  EXPECT_EQ(UpdateTime(withdrawal), 42);
}

}  // namespace
}  // namespace sdx::bgp
