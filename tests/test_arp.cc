#include "dataplane/arp.h"

#include <gtest/gtest.h>

namespace sdx::dataplane {
namespace {

using net::IPv4Address;
using net::MacAddress;

TEST(ArpResponder, ResolvesBoundAddress) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  auto mac = arp.Resolve(IPv4Address(172, 16, 0, 1));
  ASSERT_TRUE(mac);
  EXPECT_EQ(*mac, MacAddress(0xAA));
}

TEST(ArpResponder, UnknownAddressUnanswered) {
  ArpResponder arp;
  EXPECT_FALSE(arp.Resolve(IPv4Address(172, 16, 0, 1)));
}

TEST(ArpResponder, RebindReplacesMac) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xBB));
  EXPECT_EQ(arp.size(), 1u);
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1)), MacAddress(0xBB));
}

TEST(ArpResponder, UnbindRemoves) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  EXPECT_TRUE(arp.Unbind(IPv4Address(172, 16, 0, 1)));
  EXPECT_FALSE(arp.Unbind(IPv4Address(172, 16, 0, 1)));
  EXPECT_FALSE(arp.Resolve(IPv4Address(172, 16, 0, 1)));
}

TEST(ArpResponder, EncodedEntryAnswersPerRequester) {
  ArpResponder arp;
  ArpResponder::EncodedEntry entry;
  entry.default_mac = MacAddress(0xD0);
  entry.per_requester[100] = MacAddress(0xA1);
  entry.per_requester[200] = MacAddress(0xA2);
  arp.BindEncoded(IPv4Address(172, 16, 0, 1), entry);

  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1), 100), MacAddress(0xA1));
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1), 200), MacAddress(0xA2));
  // Senders without an override — and requester-unaware queries — get the
  // default answer.
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1), 300), MacAddress(0xD0));
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1)), MacAddress(0xD0));
  EXPECT_EQ(arp.size(), 1u);
  EXPECT_EQ(arp.encoded_size(), 1u);
}

TEST(ArpResponder, RequesterAwareResolveFallsThroughToPlainBindings) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1), 100), MacAddress(0xAA));
}

TEST(ArpResponder, BindDisplacesEncodedAndViceVersa) {
  ArpResponder arp;
  ArpResponder::EncodedEntry entry;
  entry.default_mac = MacAddress(0xD0);
  entry.per_requester[100] = MacAddress(0xA1);

  // Encoded binding displaced by a plain rebind (mode flip to legacy).
  arp.BindEncoded(IPv4Address(172, 16, 0, 1), entry);
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xBB));
  EXPECT_EQ(arp.size(), 1u);
  EXPECT_EQ(arp.encoded_size(), 0u);
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1), 100), MacAddress(0xBB));

  // And back again (mode flip to encoded).
  arp.BindEncoded(IPv4Address(172, 16, 0, 1), entry);
  EXPECT_EQ(arp.size(), 1u);
  EXPECT_EQ(arp.encoded_size(), 1u);
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1), 100), MacAddress(0xA1));
}

TEST(ArpResponder, UnbindRemovesEncodedBinding) {
  ArpResponder arp;
  ArpResponder::EncodedEntry entry;
  entry.default_mac = MacAddress(0xD0);
  arp.BindEncoded(IPv4Address(172, 16, 0, 1), entry);
  EXPECT_TRUE(arp.Unbind(IPv4Address(172, 16, 0, 1)));
  EXPECT_FALSE(arp.Unbind(IPv4Address(172, 16, 0, 1)));
  EXPECT_FALSE(arp.Resolve(IPv4Address(172, 16, 0, 1), 100));
}

TEST(ArpResponder, CountsQueriesAndHits) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  arp.Resolve(IPv4Address(172, 16, 0, 1));
  arp.Resolve(IPv4Address(172, 16, 0, 2));
  EXPECT_EQ(arp.query_count(), 2u);
  EXPECT_EQ(arp.hit_count(), 1u);
}

}  // namespace
}  // namespace sdx::dataplane
