#include "dataplane/arp.h"

#include <gtest/gtest.h>

namespace sdx::dataplane {
namespace {

using net::IPv4Address;
using net::MacAddress;

TEST(ArpResponder, ResolvesBoundAddress) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  auto mac = arp.Resolve(IPv4Address(172, 16, 0, 1));
  ASSERT_TRUE(mac);
  EXPECT_EQ(*mac, MacAddress(0xAA));
}

TEST(ArpResponder, UnknownAddressUnanswered) {
  ArpResponder arp;
  EXPECT_FALSE(arp.Resolve(IPv4Address(172, 16, 0, 1)));
}

TEST(ArpResponder, RebindReplacesMac) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xBB));
  EXPECT_EQ(arp.size(), 1u);
  EXPECT_EQ(*arp.Resolve(IPv4Address(172, 16, 0, 1)), MacAddress(0xBB));
}

TEST(ArpResponder, UnbindRemoves) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  EXPECT_TRUE(arp.Unbind(IPv4Address(172, 16, 0, 1)));
  EXPECT_FALSE(arp.Unbind(IPv4Address(172, 16, 0, 1)));
  EXPECT_FALSE(arp.Resolve(IPv4Address(172, 16, 0, 1)));
}

TEST(ArpResponder, CountsQueriesAndHits) {
  ArpResponder arp;
  arp.Bind(IPv4Address(172, 16, 0, 1), MacAddress(0xAA));
  arp.Resolve(IPv4Address(172, 16, 0, 1));
  arp.Resolve(IPv4Address(172, 16, 0, 2));
  EXPECT_EQ(arp.query_count(), 2u);
  EXPECT_EQ(arp.hit_count(), 1u);
}

}  // namespace
}  // namespace sdx::dataplane
