// TimeSeries ring + TimeSeriesSampler (DESIGN.md §12): overwrite
// semantics, the export JSON schema (parsed back with obs/json.h), the
// injected sampler clock, and the background thread sampling a live
// runtime's CollectTimeSeriesValues producer while the control thread
// keeps applying updates — this test is tier1, so the sanitizer matrix
// (TSan included) exercises the producer's thread-safety contract.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/timeseries.h"
#include "sdx/runtime.h"

namespace sdx::obs {
namespace {

TimeSeriesSample Sample(double t, double value) {
  TimeSeriesSample s;
  s.seconds = t;
  s.values["v"] = value;
  return s;
}

TEST(TimeSeriesTest, RingOverwritesOldestFirst) {
  TimeSeries series(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    series.Append(Sample(static_cast<double>(i), static_cast<double>(i)));
  }
  EXPECT_EQ(series.capacity(), 4u);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.total_appended(), 10u);
  const auto samples = series.Samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest surviving first: 6, 7, 8, 9.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(samples[i].seconds, 6.0 + static_cast<double>(i));
    EXPECT_DOUBLE_EQ(samples[i].values.at("v"), 6.0 + static_cast<double>(i));
  }
}

TEST(TimeSeriesTest, ToJsonRoundTripsThroughParser) {
  TimeSeries series(8);
  series.Append(Sample(0.5, 1.0));
  TimeSeriesSample second;
  second.seconds = 1.0;
  second.values["convergence.e2e.p99"] = 0.25;
  second.values["health.degraded"] = 1.0;
  series.Append(second);

  const json::Value doc = json::Parse(series.ToJson(/*interval_seconds=*/0.05));
  EXPECT_DOUBLE_EQ(doc.NumberAt("interval_seconds"), 0.05);
  const auto* samples = doc.Find("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_EQ(samples->array.size(), 2u);
  EXPECT_DOUBLE_EQ(samples->array[0].NumberAt("t"), 0.5);
  const auto* values = samples->array[1].Find("values");
  ASSERT_NE(values, nullptr);
  EXPECT_DOUBLE_EQ(values->NumberAt("convergence.e2e.p99"), 0.25);
  EXPECT_DOUBLE_EQ(values->NumberAt("health.degraded"), 1.0);
}

TEST(TimeSeriesTest, EmptySeriesExportsEmptySampleArray) {
  TimeSeries series(4);
  const json::Value doc = json::Parse(series.ToJson());
  const auto* samples = doc.Find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_TRUE(samples->array.empty());
}

TEST(TimeSeriesSamplerTest, SampleNowUsesInjectedClockAndProducer) {
  TimeSeries series(8);
  std::atomic<int> calls{0};
  TimeSeriesSampler sampler(
      &series,
      [&calls] {
        const int n = calls.fetch_add(1) + 1;
        return std::map<std::string, double>{
            {"calls", static_cast<double>(n)}};
      });
  double now = 10.0;
  sampler.clock().SetClockForTest([&now] { return now; });

  sampler.SampleNow();
  now = 20.0;
  sampler.SampleNow();

  const auto samples = series.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].seconds, 10.0);
  EXPECT_DOUBLE_EQ(samples[0].values.at("calls"), 1.0);
  EXPECT_DOUBLE_EQ(samples[1].seconds, 20.0);
  EXPECT_FALSE(sampler.running());  // SampleNow never starts the thread
}

TEST(TimeSeriesSamplerTest, BackgroundThreadSamplesUntilStopped) {
  TimeSeries series(64);
  TimeSeriesSampler::Options options;
  options.interval_seconds = 0.001;
  TimeSeriesSampler sampler(
      &series, [] { return std::map<std::string, double>{{"x", 1.0}}; },
      options);
  sampler.Start();
  sampler.Start();  // idempotent
  EXPECT_TRUE(sampler.running());
  // Deadline-bounded wait for a few background samples.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (series.total_appended() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(series.total_appended(), 3u);
  const std::uint64_t after_stop = series.total_appended();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(series.total_appended(), after_stop);
}

// The end-to-end wiring: a live runtime's sampler thread reading
// CollectTimeSeriesValues while the control thread applies updates.
TEST(RuntimeTimeSeriesTest, SamplerRunsAgainstLiveRuntime) {
  core::SdxRuntime runtime;
  constexpr core::AsNumber kA = 100;
  constexpr core::AsNumber kB = 200;
  runtime.AddParticipant(kA, 1);
  runtime.AddParticipant(kB, 2);
  const auto prefix = [](int i) {
    return net::IPv4Prefix(
        net::IPv4Address(10, static_cast<uint8_t>(i), 0, 0), 16);
  };
  for (int i = 1; i <= 4; ++i) {
    runtime.AnnouncePrefix(kB, prefix(i), {kB, 900});
  }
  runtime.FullCompile();

  runtime.EnableConvergenceTracking();
  runtime.EnableTimeSeries(/*interval_seconds=*/0.001, /*capacity=*/256);
  ASSERT_NE(runtime.timeseries(), nullptr);
  ASSERT_TRUE(runtime.timeseries_sampler()->running());

  // Control thread keeps the runtime busy while the sampler races reads.
  for (std::uint32_t round = 0; round < 50; ++round) {
    for (int i = 1; i <= 4; ++i) {
      bgp::Announcement a;
      a.from_as = kB;
      a.route.prefix = prefix(i);
      a.route.next_hop = runtime.RouterIp(kB);
      a.route.as_path = {kB};
      a.route.local_pref = 1000 + round;
      runtime.EnqueueUpdate(bgp::BgpUpdate{a});
    }
    runtime.Flush();
    if (round % 10 == 0) runtime.PublishHealth();
  }
  runtime.PublishHealth();
  runtime.SampleTimeSeriesNow();
  runtime.DisableTimeSeries();
  EXPECT_EQ(runtime.timeseries_sampler(), nullptr);

  // Samples survive DisableTimeSeries; the explicit final sample carries
  // the whole producer surface.
  const auto samples = runtime.timeseries()->Samples();
  ASSERT_FALSE(samples.empty());
  const auto& last = samples.back().values;
  EXPECT_EQ(last.count("batch.count"), 1u);
  EXPECT_EQ(last.count("batch.depth.p95"), 1u);
  EXPECT_EQ(last.count("health.degraded"), 1u);
  EXPECT_EQ(last.count("drop.total"), 1u);
  EXPECT_EQ(last.count("convergence.e2e.p99"), 1u);
  EXPECT_GT(last.at("convergence.tracked"), 0.0);

  // Re-enabling replaces the series with a fresh ring.
  runtime.EnableTimeSeries(/*interval_seconds=*/0.001, /*capacity=*/7);
  runtime.DisableTimeSeries();
  EXPECT_EQ(runtime.timeseries()->capacity(), 7u);
}

}  // namespace
}  // namespace sdx::obs
