// Sharded decision pass (DESIGN.md §13): the cross-shard equivalence
// harness gating the parallel rib_update stage of ApplyUpdates.
//
//   * shard routing units — PrefixShard determinism, ShardByPrefix
//     partition/cover properties, option resolution (env knob, clamp,
//     parallel=false collapse) via the journaled resolved count;
//   * the equivalence oracle — a 1-shard sequential runtime and an N-shard
//     parallel runtime fed the same mixed announce/withdraw/flap batches
//     must end with identical Loc-RIB / advertised-next-hop (FIB/VNH)
//     state, identical route-server counters, and an identical journal
//     event stream (timestamps excluded);
//   * determinism — same fixture + same shard count twice gives
//     byte-identical journal JSONL (sans ts) and identical metric
//     counters;
//   * the TSan stress surface — parallel decision workers incrementing the
//     live decision.updates counter while a TimeSeriesSampler thread reads
//     it and the control thread polls HealthSnapshot/PublishHealth.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bgp/shard.h"
#include "bgp/update_queue.h"
#include "obs/journal.h"
#include "sdx/runtime.h"

namespace sdx::core {
namespace {

net::IPv4Prefix P(int i) {
  return net::IPv4Prefix(
      net::IPv4Address(10, static_cast<uint8_t>(i), 0, 0), 16);
}

// ---------------------------------------------------------------------------
// Shard routing units.

TEST(PrefixShard, DeterministicAndInRange) {
  for (int i = 1; i <= 64; ++i) {
    const net::IPv4Prefix prefix = P(i % 32 + 1);
    const std::uint64_t hash = bgp::PrefixShardHash(prefix);
    EXPECT_EQ(hash, bgp::PrefixShardHash(prefix)) << "hash must be pure";
    for (const int shards : {1, 2, 4, 8, bgp::kMaxDecisionShards}) {
      const int shard = bgp::PrefixShard(prefix, shards);
      EXPECT_GE(shard, 0);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, bgp::PrefixShard(prefix, shards));
    }
    EXPECT_EQ(bgp::PrefixShard(prefix, 1), 0);
    EXPECT_EQ(bgp::PrefixShard(prefix, 0), 0) << "degenerate counts clamp";
  }
}

TEST(PrefixShard, ShardByPrefixPartitionsSlots) {
  std::vector<bgp::CoalescedUpdate> slots;
  for (int i = 1; i <= 24; ++i) {
    bgp::Announcement a;
    a.from_as = 100;
    a.route.prefix = P(i);
    slots.push_back({bgp::BgpUpdate{a}, {}, 0});
  }
  const auto lists = bgp::ShardByPrefix(slots, 4);
  ASSERT_EQ(lists.size(), 4u);
  std::set<std::size_t> seen;
  for (std::size_t s = 0; s < lists.size(); ++s) {
    for (const std::size_t index : lists[s]) {
      EXPECT_TRUE(seen.insert(index).second) << "slot in two shards";
      EXPECT_EQ(static_cast<std::size_t>(bgp::PrefixShard(
                    bgp::UpdatePrefix(slots[index].update), 4)),
                s);
    }
  }
  EXPECT_EQ(seen.size(), slots.size()) << "every slot lands in a shard";
  // Same-prefix slots always share a shard (the per-prefix sequential
  // guarantee the merge relies on).
  bgp::Announcement dup;
  dup.from_as = 200;
  dup.route.prefix = P(1);
  slots.push_back({bgp::BgpUpdate{dup}, {}, 0});
  const auto lists2 = bgp::ShardByPrefix(slots, 8);
  for (const auto& list : lists2) {
    const bool has_first =
        std::find(list.begin(), list.end(), std::size_t{0}) != list.end();
    const bool has_dup =
        std::find(list.begin(), list.end(), slots.size() - 1) != list.end();
    EXPECT_EQ(has_first, has_dup);
  }
}

// Reads the resolved shard count SetDecisionOptions journals (arg2 of the
// decision_options_changed event) — the observable form of the private
// resolution rule.
std::uint64_t ResolvedViaJournal(SdxRuntime& runtime,
                                 const DecisionOptions& options) {
  runtime.SetDecisionOptions(options);
  const auto events = runtime.journal()->Events();
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->type == obs::JournalEventType::kDecisionOptionsChanged) {
      return it->arg2;
    }
  }
  ADD_FAILURE() << "no decision_options_changed event journaled";
  return 0;
}

TEST(DecisionOptionsTest, ResolutionJournaledAndClamped) {
  SdxRuntime runtime;
  ASSERT_NE(runtime.journal(), nullptr);

  EXPECT_EQ(ResolvedViaJournal(runtime, {.parallel = false, .shards = 8}), 1u)
      << "parallel=false collapses to one shard";
  EXPECT_EQ(ResolvedViaJournal(runtime, {.parallel = true, .shards = 3}), 3u);
  EXPECT_EQ(ResolvedViaJournal(runtime, {.parallel = true, .shards = 64}),
            static_cast<std::uint64_t>(bgp::kMaxDecisionShards))
      << "shard counts clamp to kMaxDecisionShards";

  // SetDecisionOptions returns the previous options (mirrors
  // SetCompileOptions).
  const DecisionOptions previous =
      runtime.SetDecisionOptions({.parallel = true, .shards = 2});
  EXPECT_TRUE(previous.parallel);
  EXPECT_EQ(previous.shards, 64);
}

TEST(DecisionOptionsTest, EnvKnobFillsUnsetShardCount) {
  const char* saved = std::getenv("SDX_DECISION_SHARDS");
  const std::string saved_value = saved ? saved : "";
  ::setenv("SDX_DECISION_SHARDS", "5", 1);
  SdxRuntime runtime;
  EXPECT_EQ(ResolvedViaJournal(runtime, {.parallel = true, .shards = 0}), 5u)
      << "shards=0 defers to $SDX_DECISION_SHARDS";
  EXPECT_EQ(ResolvedViaJournal(runtime, {.parallel = true, .shards = 2}), 2u)
      << "an explicit count beats the env knob";
  if (saved) {
    ::setenv("SDX_DECISION_SHARDS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("SDX_DECISION_SHARDS");
  }
}

// ---------------------------------------------------------------------------
// Runtime fixture: four participants, 24 prefixes, seeded flap bursts.

class DecisionShardTest : public ::testing::Test {
 protected:
  static constexpr AsNumber kA = 100;
  static constexpr AsNumber kB = 200;
  static constexpr AsNumber kC = 300;
  static constexpr AsNumber kD = 400;
  static constexpr int kPrefixes = 24;

  // Builds a fresh runtime over the fixture topology with the requested
  // decision sharding. The compile pool is pinned to 4 threads so the
  // parallel path engages regardless of host core count.
  std::unique_ptr<SdxRuntime> MakeRuntime(int shards, bool parallel) {
    auto runtime = std::make_unique<SdxRuntime>();
    runtime->AddParticipant(kA, 1);
    runtime->AddParticipant(kB, 1);
    runtime->AddParticipant(kC, 1);
    runtime->AddParticipant(kD, 2);
    for (int i = 1; i <= kPrefixes; ++i) {
      runtime->AnnouncePrefix(kB, P(i), {kB, 900});
    }
    runtime->SetCompileOptions(
        {.parallel = true, .incremental = true, .threads = 4});
    runtime->SetDecisionOptions({.parallel = parallel, .shards = shards});
    runtime->FullCompile();
    return runtime;
  }

  static bgp::BgpUpdate Announce(const SdxRuntime& runtime, AsNumber from,
                                 const net::IPv4Prefix& prefix,
                                 std::uint32_t local_pref) {
    bgp::Announcement a;
    a.from_as = from;
    a.route.prefix = prefix;
    a.route.next_hop = runtime.RouterIp(from);
    a.route.as_path = {from};
    a.route.local_pref = local_pref;
    return bgp::BgpUpdate{a};
  }

  static bgp::BgpUpdate Withdraw(AsNumber from,
                                 const net::IPv4Prefix& prefix) {
    bgp::Withdrawal w;
    w.from_as = from;
    w.prefix = prefix;
    return bgp::BgpUpdate{w};
  }

  // A deterministic mixed workload: `rounds` batches, each touching every
  // prefix, alternating announcer between kC and kD with escalating
  // local-pref, plus periodic withdraw/re-announce churn so both update
  // kinds and best-route flips in both directions occur.
  std::vector<std::vector<bgp::BgpUpdate>> MakeBatches(
      const SdxRuntime& runtime, int rounds) {
    std::vector<std::vector<bgp::BgpUpdate>> batches;
    for (int round = 0; round < rounds; ++round) {
      std::vector<bgp::BgpUpdate> batch;
      for (int i = 1; i <= kPrefixes; ++i) {
        const AsNumber from = (i + round) % 2 == 0 ? kC : kD;
        if (round > 0 && (i + round) % 5 == 0) {
          batch.push_back(Withdraw(from, P(i)));
        } else {
          batch.push_back(Announce(
              runtime, from, P(i),
              1000 + static_cast<std::uint32_t>(round * kPrefixes + i)));
        }
        // Some same-(peer,prefix) flaps so coalescing participates.
        if (i % 7 == 0) {
          batch.push_back(Announce(
              runtime, from, P(i),
              2000 + static_cast<std::uint32_t>(round * kPrefixes + i)));
        }
      }
      batches.push_back(std::move(batch));
    }
    return batches;
  }
};

// ---------------------------------------------------------------------------
// Per-shard batch stats + metrics.

TEST_F(DecisionShardTest, BatchStatsReportShardSplit) {
  auto runtime = MakeRuntime(/*shards=*/4, /*parallel=*/true);
  const auto batches = MakeBatches(*runtime, 1);
  const BatchStats stats = runtime->ApplyUpdates(batches[0]);

  EXPECT_TRUE(stats.decision_parallel);
  EXPECT_EQ(stats.decision_shards, 4);
  ASSERT_EQ(stats.decision_shard_updates.size(), 4u);
  ASSERT_EQ(stats.decision_shard_seconds.size(), 4u);
  EXPECT_EQ(std::accumulate(stats.decision_shard_updates.begin(),
                            stats.decision_shard_updates.end(), std::size_t{0}),
            stats.updates_applied)
      << "per-shard slot counts must partition the batch";
  for (const double seconds : stats.decision_shard_seconds) {
    EXPECT_GE(seconds, 0.0);
  }

  // The rib_update span carries one decision.shard<i> child per shard.
  std::size_t shard_spans = 0;
  for (const obs::SpanRecord& span : stats.stages) {
    if (span.name.rfind("decision.shard", 0) == 0) ++shard_spans;
  }
  EXPECT_EQ(shard_spans, 4u);

  const obs::MetricsSnapshot snapshot = runtime->SnapshotMetrics();
  EXPECT_EQ(snapshot.gauges.at("decision.shards"), 4.0);
  EXPECT_GE(snapshot.counters.at("decision.parallel_batches"), 1u);
  EXPECT_EQ(snapshot.counters.at("decision.updates"), stats.updates_applied);
  std::uint64_t shard_counter_total = 0;
  for (int s = 0; s < 4; ++s) {
    const auto it = snapshot.counters.find("decision.shard" +
                                           std::to_string(s) + ".updates");
    if (it != snapshot.counters.end()) shard_counter_total += it->second;
  }
  EXPECT_EQ(shard_counter_total, stats.updates_applied);
}

TEST_F(DecisionShardTest, SingleUpdateFallsBackToSequential) {
  auto runtime = MakeRuntime(/*shards=*/4, /*parallel=*/true);
  const UpdateStats update =
      runtime->ApplyBgpUpdate(Announce(*runtime, kC, P(1), 5000));
  EXPECT_TRUE(update.best_route_changed);
  const obs::MetricsSnapshot snapshot = runtime->SnapshotMetrics();
  EXPECT_GE(snapshot.counters.at("decision.sequential_batches"), 1u);
  EXPECT_EQ(snapshot.counters.count("decision.parallel_batches"), 0u);
}

// ---------------------------------------------------------------------------
// The cross-shard equivalence oracle (the tentpole gate).

// Everything routing-observable about a runtime, collected through public
// introspection: per-participant Loc-RIB contents, advertised next hops
// (the FIB/VNH-visible surface), route-server counters, and the journal
// stream with timestamps erased.
struct ObservableState {
  std::map<AsNumber, std::map<net::IPv4Prefix, bgp::BgpRoute>> loc_ribs;
  std::map<std::pair<AsNumber, net::IPv4Prefix>,
           std::optional<net::IPv4Address>>
      advertised;
  std::map<AsNumber, rs::ParticipantCounters> counters;
  std::uint64_t updates_processed = 0;
  std::uint64_t export_suppressions = 0;
  std::vector<std::string> journal;  // canonical events, ts excluded
};

// True for event types whose arg2 is a measured duration in µs — wall
// clock, not behavior; excluded from equivalence like the ts field.
bool DurationBearing(obs::JournalEventType type) {
  return type == obs::JournalEventType::kBgpUpdateEnd ||
         type == obs::JournalEventType::kBatchEnd ||
         type == obs::JournalEventType::kCompileEnd;
}

std::vector<std::string> CanonicalJournal(const obs::Journal* journal) {
  std::vector<std::string> out;
  if (journal == nullptr) return out;
  for (const obs::JournalEvent& event : journal->Events()) {
    const std::string arg2 =
        DurationBearing(event.type) ? "µs" : std::to_string(event.arg2);
    out.push_back(std::to_string(event.seq) + " " +
                  obs::JournalEventTypeName(event.type) + " id=" +
                  std::to_string(event.update_id) + " args=" +
                  std::to_string(event.arg0) + "," +
                  std::to_string(event.arg1) + "," + arg2 + " " +
                  event.detail);
  }
  return out;
}

ObservableState Observe(SdxRuntime& runtime, int prefixes) {
  ObservableState state;
  const rs::RouteServer& rs = runtime.route_server();
  for (const AsNumber as : rs.Participants()) {
    const bgp::LocRib* rib = rs.LocRibFor(as);
    if (rib == nullptr) {
      ADD_FAILURE() << "registered participant " << as << " has no Loc-RIB";
      continue;
    }
    auto& routes = state.loc_ribs[as];
    rib->ForEach([&routes](const bgp::BgpRoute& route) {
      routes[route.prefix] = route;
    });
    for (int i = 1; i <= prefixes; ++i) {
      state.advertised[{as, P(i)}] = runtime.AdvertisedNextHop(as, P(i));
    }
    if (const rs::ParticipantCounters* counters = rs.CountersFor(as)) {
      state.counters[as] = *counters;
    }
  }
  state.updates_processed = rs.updates_processed();
  state.export_suppressions = rs.export_suppressions();
  state.journal = CanonicalJournal(runtime.journal());
  return state;
}

void ExpectSameState(ObservableState& seq, ObservableState& shard) {
  EXPECT_EQ(seq.updates_processed, shard.updates_processed);
  EXPECT_EQ(seq.export_suppressions, shard.export_suppressions);
  EXPECT_EQ(seq.loc_ribs, shard.loc_ribs) << "Loc-RIB contents diverged";
  EXPECT_EQ(seq.advertised, shard.advertised)
      << "advertised next hops (FIB/VNH surface) diverged";
  ASSERT_EQ(seq.counters.size(), shard.counters.size());
  for (const auto& [as, counters] : seq.counters) {
    const rs::ParticipantCounters& other = shard.counters.at(as);
    EXPECT_EQ(counters.announcements, other.announcements) << "AS " << as;
    EXPECT_EQ(counters.withdrawals, other.withdrawals) << "AS " << as;
    EXPECT_EQ(counters.best_route_changes, other.best_route_changes)
        << "AS " << as;
  }
}

TEST_F(DecisionShardTest, ShardedMatchesSequentialStateAndJournal) {
  for (const int shards : {2, 4, 8}) {
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    auto seq = MakeRuntime(/*shards=*/1, /*parallel=*/false);
    auto par = MakeRuntime(shards, /*parallel=*/true);
    // Diverging decision_options_changed journal args would trip the
    // journal diff below for the wrong reason; clear both journals so the
    // comparison starts at the first batch.
    seq->journal()->Clear();
    par->journal()->Clear();

    const auto batches = MakeBatches(*seq, /*rounds=*/4);
    for (const auto& batch : batches) {
      const BatchStats s = seq->ApplyUpdates(batch);
      const BatchStats p = par->ApplyUpdates(batch);
      EXPECT_FALSE(s.decision_parallel);
      EXPECT_TRUE(p.decision_parallel) << "parallel path did not engage";
      EXPECT_EQ(s.updates_applied, p.updates_applied);
      EXPECT_EQ(s.updates_coalesced, p.updates_coalesced);
      EXPECT_EQ(s.prefixes_changed, p.prefixes_changed);
      // Outcomes line up slot for slot: same prefixes, same change bits,
      // same provenance ids (both journals allocate in lockstep).
      ASSERT_EQ(s.outcomes.size(), p.outcomes.size());
      for (std::size_t i = 0; i < s.outcomes.size(); ++i) {
        EXPECT_EQ(s.outcomes[i].prefix, p.outcomes[i].prefix);
        EXPECT_EQ(s.outcomes[i].best_route_changed,
                  p.outcomes[i].best_route_changed);
        EXPECT_EQ(s.outcomes[i].cause_id, p.outcomes[i].cause_id);
      }
    }

    ObservableState seq_state = Observe(*seq, kPrefixes);
    ObservableState par_state = Observe(*par, kPrefixes);
    ExpectSameState(seq_state, par_state);

    // Journal streams match event for event (timestamps excluded).
    ASSERT_EQ(seq_state.journal.size(), par_state.journal.size());
    for (std::size_t i = 0; i < seq_state.journal.size(); ++i) {
      ASSERT_EQ(seq_state.journal[i], par_state.journal[i])
          << "journal diverged at event " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism: same fixture + same shard count ⇒ byte-identical journal
// JSONL (timestamps stripped) and identical metric counters.

// Removes the "ts":<float> field from every line of ToJsonl() output, and
// masks the trailing duration arg of *_end events (measured µs — wall
// clock, not behavior). The remainder must be byte-identical across runs.
std::string StripTimestamps(const std::string& jsonl) {
  std::string out;
  std::size_t pos = 0;
  while (pos < jsonl.size()) {
    const std::size_t eol = jsonl.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? jsonl.size() : eol;
    std::string line = jsonl.substr(pos, end - pos);
    const std::size_t ts = line.find("\"ts\":");
    if (ts != std::string::npos) {
      const std::size_t comma = line.find(',', ts);
      if (comma != std::string::npos) line.erase(ts, comma - ts + 1);
    }
    if (line.find("_end\"") != std::string::npos) {
      const std::size_t open = line.find("\"args\": [");
      const std::size_t close = line.find(']', open);
      if (open != std::string::npos && close != std::string::npos) {
        const std::size_t last_comma = line.rfind(',', close);
        if (last_comma != std::string::npos && last_comma > open) {
          line.replace(last_comma + 1, close - last_comma - 1, " _");
        }
      }
    }
    out += line;
    out += '\n';
    pos = end + 1;
  }
  return out;
}

TEST_F(DecisionShardTest, SameShardCountIsRunToRunDeterministic) {
  std::string first_journal;
  std::map<std::string, std::uint64_t> first_counters;
  for (int run = 0; run < 2; ++run) {
    auto runtime = MakeRuntime(/*shards=*/4, /*parallel=*/true);
    for (const auto& batch : MakeBatches(*runtime, /*rounds=*/3)) {
      runtime->ApplyUpdates(batch);
    }
    const std::string journal = StripTimestamps(runtime->journal()->ToJsonl());
    const obs::MetricsSnapshot snapshot = runtime->SnapshotMetrics();
    if (run == 0) {
      first_journal = journal;
      first_counters = snapshot.counters;
      EXPECT_FALSE(first_journal.empty());
    } else {
      EXPECT_EQ(first_journal, journal)
          << "journal JSONL must be byte-identical across runs";
      EXPECT_EQ(first_counters, snapshot.counters)
          << "metric counters must be identical across runs";
    }
  }
}

// ---------------------------------------------------------------------------
// TSan stress: decision workers increment the live decision.updates
// counter while the sampler thread reads it (CollectTimeSeriesValues) and
// the control thread polls health between batches. Run under the thread
// sanitizer in CI; here it asserts the counter lands exactly and samples
// flow.

TEST_F(DecisionShardTest, ParallelDecisionsRaceTimeSeriesSampler) {
  auto runtime = MakeRuntime(/*shards=*/4, /*parallel=*/true);
  runtime->EnableConvergenceTracking();
  runtime->EnableTimeSeries(/*interval_seconds=*/0.0005);

  std::size_t applied = 0;
  constexpr int kRounds = 12;
  const auto batches = MakeBatches(*runtime, kRounds);
  for (int round = 0; round < kRounds; ++round) {
    applied += runtime->ApplyUpdates(batches[round]).updates_applied;
    runtime->PublishHealth();
    const obs::HealthReport health = runtime->HealthSnapshot();
    EXPECT_GE(health.last_decision_seconds, 0.0);
  }
  runtime->SampleTimeSeriesNow();
  runtime->DisableTimeSeries();

  // The live counter observed from any thread equals the merged total.
  const auto values = runtime->CollectTimeSeriesValues();
  ASSERT_EQ(values.count("decision.updates"), 1u);
  EXPECT_EQ(values.at("decision.updates"), static_cast<double>(applied));
  ASSERT_NE(runtime->timeseries(), nullptr);
  EXPECT_GT(runtime->timeseries()->size(), 0u);

  // Convergence decision-segment attribution: wall + per-shard worker time
  // both accumulated, exported as gauges.
  const obs::ConvergenceStats stats = runtime->convergence()->Snapshot();
  EXPECT_GE(stats.decision_wall_seconds, 0.0);
  EXPECT_GE(stats.decision_shard_seconds, 0.0);
  const obs::MetricsSnapshot snapshot = runtime->SnapshotMetrics();
  EXPECT_EQ(snapshot.gauges.count("convergence.decision.wall_seconds_total"),
            1u);
  EXPECT_EQ(snapshot.gauges.count("convergence.decision.shard_seconds_total"),
            1u);
}

}  // namespace
}  // namespace sdx::core
