// Encoding oracle gate: the iSDX-style encoded-VMAC compile (masked
// clause + next-hop rules, per-sender ARP answers — sdx/reach.h) must be
// packet-for-packet identical to the legacy per-group compile, across full
// compiles, per-participant parallel compilation units, fast-path churn,
// batched ingest, overflow policies (> kEncodedClauseBits clauses), and
// encoding-mode flips on a live runtime. Every comparison is seeded; a
// failing oracle prints the sampler seed to replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "oracle.h"
#include "workload/policy_gen.h"
#include "workload/seed.h"
#include "workload/topology_gen.h"
#include "workload/traffic_gen.h"
#include "workload/update_gen.h"

namespace sdx::oracle {
namespace {

using core::RuntimeOptions;
using core::SdxRuntime;
using core::VmacEncoding;

constexpr std::uint64_t kSeed = 0xc0dedfacade5117ull;

RuntimeOptions WithEncoding(VmacEncoding encoding, bool parallel = true) {
  RuntimeOptions options;
  options.compile.parallel = parallel;
  options.compile.incremental = true;
  options.compile.threads = 4;
  options.vmac_encoding = encoding;
  return options;
}

struct Fixture {
  workload::IxpScenario scenario;
  workload::GeneratedPolicies policies;
};

Fixture MakeFixture(int participants, int prefixes, std::uint64_t seed) {
  Fixture fixture;
  workload::TopologyParams topo;
  topo.participants = participants;
  topo.total_prefixes = prefixes;
  topo.seed = seed;
  fixture.scenario = workload::TopologyGenerator(topo).Generate();
  workload::PolicyParams policy_params;
  policy_params.seed = workload::DeriveSeed(seed, 1);
  policy_params.coverage_fanout = participants / 2;
  fixture.policies =
      workload::PolicyGenerator(policy_params).Generate(fixture.scenario);
  return fixture;
}

TEST(OracleEncoding, EncodedMatchesLegacyFullCompile) {
  const Fixture fixture = MakeFixture(40, 600, kSeed);
  auto legacy = BuildRuntime(fixture.scenario, fixture.policies,
                             WithEncoding(VmacEncoding::kLegacy));
  auto encoded = BuildRuntime(fixture.scenario, fixture.policies,
                              WithEncoding(VmacEncoding::kEncoded));
  EXPECT_FALSE(legacy->encoded_vmacs_active());
  EXPECT_TRUE(encoded->encoded_vmacs_active());
  EXPECT_GT(encoded->arp().encoded_size(), 0u);

  const OracleResult result = ComparePacketBehavior(
      *legacy, *encoded, fixture.scenario, workload::DeriveSeed(kSeed, 2),
      500);
  EXPECT_TRUE(result.equivalent) << result.report;
  EXPECT_EQ(result.packets_checked, 500u);
}

// The per-participant compilation units must merge deterministically: the
// pooled encoded compile is packet-identical to the sequential one and
// installs exactly the same number of rules.
TEST(OracleEncoding, ParallelUnitsMatchSequentialEncoded) {
  const Fixture fixture = MakeFixture(40, 600, kSeed + 1);
  auto seq = BuildRuntime(fixture.scenario, fixture.policies,
                          WithEncoding(VmacEncoding::kEncoded, false));
  auto par = BuildRuntime(fixture.scenario, fixture.policies,
                          WithEncoding(VmacEncoding::kEncoded, true));

  const core::CompileStats seq_stats = seq->FullCompile();
  const core::CompileStats par_stats = par->FullCompile();
  EXPECT_EQ(seq_stats.flow_rule_count, par_stats.flow_rule_count);
  EXPECT_EQ(seq_stats.override_rule_count, par_stats.override_rule_count);
  EXPECT_EQ(seq_stats.default_rule_count, par_stats.default_rule_count);

  const OracleResult result = ComparePacketBehavior(
      *seq, *par, fixture.scenario, workload::DeriveSeed(kSeed, 3), 500);
  EXPECT_TRUE(result.equivalent) << result.report;
}

// The point of the encoding (Fig. 7): masked per-clause rules replace
// per-group rules, so the encoded table is strictly smaller once groups
// outnumber clauses.
TEST(OracleEncoding, EncodedInstallsFewerRules) {
  const Fixture fixture = MakeFixture(60, 1200, kSeed + 2);
  auto legacy = BuildRuntime(fixture.scenario, fixture.policies,
                             WithEncoding(VmacEncoding::kLegacy));
  auto encoded = BuildRuntime(fixture.scenario, fixture.policies,
                              WithEncoding(VmacEncoding::kEncoded));
  const core::CompileStats legacy_stats = legacy->FullCompile();
  const core::CompileStats encoded_stats = encoded->FullCompile();
  EXPECT_LT(encoded_stats.flow_rule_count, legacy_stats.flow_rule_count);
}

TEST(OracleEncoding, FastPathChurnMatchesLegacy) {
  const Fixture fixture = MakeFixture(40, 600, kSeed + 3);
  auto legacy = BuildRuntime(fixture.scenario, fixture.policies,
                             WithEncoding(VmacEncoding::kLegacy));
  auto encoded = BuildRuntime(fixture.scenario, fixture.policies,
                              WithEncoding(VmacEncoding::kEncoded));

  auto update_params =
      workload::UpdateStreamParams::Small(600, 150, kSeed + 4);
  update_params.duration_seconds = 1e12;
  const auto stream =
      workload::UpdateGenerator(update_params).GenerateFor(fixture.scenario);
  ASSERT_FALSE(stream.updates.empty());
  for (const auto& update : stream.updates) {
    legacy->ApplyBgpUpdate(update);
    encoded->ApplyBgpUpdate(update);
  }

  // Fast-path state only: encoded slices carry (almost) no rules — new
  // groups ride the pre-installed masked rules via their ARP answers.
  const OracleResult fast = ComparePacketBehavior(
      *legacy, *encoded, fixture.scenario, workload::DeriveSeed(kSeed, 5),
      500);
  EXPECT_TRUE(fast.equivalent) << fast.report;

  // And after the background pass folds the singletons back in.
  legacy->FullCompile();
  encoded->FullCompile();
  const OracleResult full = ComparePacketBehavior(
      *legacy, *encoded, fixture.scenario, workload::DeriveSeed(kSeed, 6),
      500);
  EXPECT_TRUE(full.equivalent) << full.report;
}

TEST(OracleEncoding, BatchedIngestMatchesLegacy) {
  const Fixture fixture = MakeFixture(40, 600, kSeed + 7);
  auto legacy = BuildRuntime(fixture.scenario, fixture.policies,
                             WithEncoding(VmacEncoding::kLegacy));
  auto encoded = BuildRuntime(fixture.scenario, fixture.policies,
                              WithEncoding(VmacEncoding::kEncoded));

  auto update_params =
      workload::UpdateStreamParams::Small(600, 150, kSeed + 8);
  update_params.duration_seconds = 1e12;
  const auto stream =
      workload::UpdateGenerator(update_params).GenerateFor(fixture.scenario);
  ASSERT_FALSE(stream.updates.empty());
  legacy->ApplyUpdates(stream.updates);
  encoded->ApplyUpdates(stream.updates);

  const OracleResult result = ComparePacketBehavior(
      *legacy, *encoded, fixture.scenario, workload::DeriveSeed(kSeed, 9),
      500);
  EXPECT_TRUE(result.equivalent) << result.report;
}

// Hand-built scenario where one sender has more outbound clauses than the
// VMAC has clause bits: that sender must fall back to legacy per-group
// rules (and legacy ARP answers) while everyone else stays encoded, with
// no behavioral difference either way.
TEST(OracleEncoding, OverflowSenderFallsBackSoundly) {
  constexpr int kTargets = 7;
  constexpr int kClauses = core::kEncodedClauseBits + 6;
  const std::uint16_t kPorts[] = {80, 443, 8080, 1935, 22};

  workload::IxpScenario scenario;
  workload::Member sender;
  sender.as = 100;
  sender.ports = 1;
  scenario.members.push_back(sender);
  for (int t = 0; t < kTargets; ++t) {
    workload::Member member;
    member.as = 101 + t;
    member.ports = 1;
    for (int p = 0; p < 4; ++p) {
      member.announced.push_back(
          workload::TopologyGenerator::PrefixNumber(t * 4 + p));
    }
    scenario.members.push_back(member);
    scenario.prefixes.insert(scenario.prefixes.end(),
                             member.announced.begin(),
                             member.announced.end());
  }

  workload::GeneratedPolicies policies;
  std::vector<core::OutboundClause> overflow;
  for (int i = 0; i < kClauses; ++i) {
    core::OutboundClause clause;
    clause.match = policy::Predicate::DstPort(kPorts[i % 5]);
    const workload::Member& target = scenario.members[1 + (i % kTargets)];
    clause.to = target.as;
    // Distinct per-clause destination subsets keep the clauses from
    // shadowing each other outright and create distinct behavior sets.
    clause.dst_prefixes = {target.announced[i % target.announced.size()]};
    overflow.push_back(clause);
  }
  policies.outbound[100] = overflow;
  // A well-behaved encoded sender next to the overflow one, so both rule
  // shapes coexist in one fabric.
  core::OutboundClause simple;
  simple.match = policy::Predicate::DstPort(443);
  simple.to = 103;
  policies.outbound[101] = {simple};

  auto legacy = BuildRuntime(scenario, policies,
                             WithEncoding(VmacEncoding::kLegacy));
  auto encoded = BuildRuntime(scenario, policies,
                              WithEncoding(VmacEncoding::kEncoded));
  EXPECT_TRUE(encoded->encoded_vmacs_active());

  const OracleResult result = ComparePacketBehavior(
      *legacy, *encoded, scenario, workload::DeriveSeed(kSeed, 10), 600);
  EXPECT_TRUE(result.equivalent) << result.report;
}

// Flipping the encoding on a live runtime must rebind every group's ARP
// answer and recompile into the other rule shape, staying equivalent to a
// never-flipped reference in both directions.
TEST(OracleEncoding, ModeFlipRebindsCleanly) {
  const Fixture fixture = MakeFixture(25, 400, kSeed + 11);
  auto reference = BuildRuntime(fixture.scenario, fixture.policies,
                                WithEncoding(VmacEncoding::kLegacy));
  auto subject = BuildRuntime(fixture.scenario, fixture.policies,
                              WithEncoding(VmacEncoding::kLegacy));

  RuntimeOptions options = subject->runtime_options();
  options.vmac_encoding = VmacEncoding::kEncoded;
  subject->Configure(options);
  subject->FullCompile();
  ASSERT_TRUE(subject->encoded_vmacs_active());
  const OracleResult to_encoded = ComparePacketBehavior(
      *reference, *subject, fixture.scenario, workload::DeriveSeed(kSeed, 12),
      400);
  EXPECT_TRUE(to_encoded.equivalent) << to_encoded.report;

  options.vmac_encoding = VmacEncoding::kLegacy;
  subject->Configure(options);
  subject->FullCompile();
  ASSERT_FALSE(subject->encoded_vmacs_active());
  EXPECT_EQ(subject->arp().encoded_size(), 0u);
  const OracleResult back = ComparePacketBehavior(
      *reference, *subject, fixture.scenario, workload::DeriveSeed(kSeed, 13),
      400);
  EXPECT_TRUE(back.equivalent) << back.report;
}

// Light seeded sweep (the deep one lives in the slow lane with the fuzz
// oracle): several scenario seeds, full-compile equivalence each.
TEST(OracleEncoding, SeededSweep) {
  for (std::uint64_t round = 0; round < 3; ++round) {
    const std::uint64_t seed = workload::DeriveSeed(kSeed, 20 + round);
    const Fixture fixture = MakeFixture(30, 450, seed);
    auto legacy = BuildRuntime(fixture.scenario, fixture.policies,
                               WithEncoding(VmacEncoding::kLegacy));
    auto encoded = BuildRuntime(fixture.scenario, fixture.policies,
                                WithEncoding(VmacEncoding::kEncoded));
    const OracleResult result = ComparePacketBehavior(
        *legacy, *encoded, fixture.scenario, workload::DeriveSeed(seed, 1),
        200);
    EXPECT_TRUE(result.equivalent)
        << "scenario seed " << seed << "\n" << result.report;
  }
}

}  // namespace
}  // namespace sdx::oracle
