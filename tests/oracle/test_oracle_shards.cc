// Tier-1 cross-shard decision oracle (DESIGN.md §13): ApplyUpdates with
// the decision pass fanned across N prefix-hash shards must be packet-for-
// packet AND state-for-state identical to the 1-shard sequential pass, for
// every N. Seeded mini-fuzz over shards ∈ {1, 2, 4, 8} on generated
// topologies, flap bursts, and mixed announce/withdraw streams; a failing
// run prints the master seed to replay (override with SDX_ORACLE_SEED).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "bgp/rib.h"
#include "oracle.h"
#include "workload/policy_gen.h"
#include "workload/seed.h"
#include "workload/topology_gen.h"
#include "workload/update_gen.h"

namespace sdx::oracle {
namespace {

using core::CompileOptions;
using core::DecisionOptions;
using core::SdxRuntime;

std::uint64_t MasterSeed() {
  if (const char* env = std::getenv("SDX_ORACLE_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0x5dc151a4d5eed001ull;
}

struct Fixture {
  workload::IxpScenario scenario;
  workload::GeneratedPolicies policies;
};

Fixture MakeFixture(int participants, int prefixes, std::uint64_t seed) {
  Fixture fixture;
  workload::TopologyParams topo;
  topo.participants = participants;
  topo.total_prefixes = prefixes;
  topo.seed = seed;
  fixture.scenario = workload::TopologyGenerator(topo).Generate();
  workload::PolicyParams policy_params;
  policy_params.seed = workload::DeriveSeed(seed, 1);
  policy_params.coverage_fanout = participants / 2;
  fixture.policies =
      workload::PolicyGenerator(policy_params).Generate(fixture.scenario);
  return fixture;
}

// A runtime over the fixture with the decision pass pinned to `shards`
// (shards <= 1 = the classic sequential pass). The compile pool is pinned
// to 4 threads so the fan-out engages regardless of host core count.
std::unique_ptr<SdxRuntime> MakeRuntime(const Fixture& fixture, int shards) {
  CompileOptions options;
  options.threads = 4;
  auto runtime = BuildRuntime(fixture.scenario, fixture.policies, options);
  runtime->SetDecisionOptions(
      DecisionOptions{.parallel = shards > 1, .shards = shards});
  return runtime;
}

// Loc-RIB contents for every participant — the control-plane state the
// decision pass owns. AdvertisedNextHop (the FIB/VNH surface) is covered
// packet-level by ComparePacketBehavior.
std::map<bgp::AsNumber, std::map<net::IPv4Prefix, bgp::BgpRoute>> LocRibs(
    const SdxRuntime& runtime) {
  std::map<bgp::AsNumber, std::map<net::IPv4Prefix, bgp::BgpRoute>> out;
  const rs::RouteServer& rs = runtime.route_server();
  for (const bgp::AsNumber as : rs.Participants()) {
    if (const bgp::LocRib* rib = rs.LocRibFor(as)) {
      auto& routes = out[as];
      rib->ForEach([&routes](const bgp::BgpRoute& route) {
        routes[route.prefix] = route;
      });
    }
  }
  return out;
}

TEST(OracleShards, ShardCountsAreObservationallyEquivalent) {
  const std::uint64_t master = MasterSeed();
  std::cout << "[ oracle ] master seed " << master
            << " (override with SDX_ORACLE_SEED)\n";

  struct Config {
    int participants;
    int prefixes;
    std::size_t burst_updates;
  };
  const Config configs[] = {{24, 360, 96}, {40, 600, 160}};
  const int shard_counts[] = {1, 2, 4, 8};

  for (std::size_t c = 0; c < std::size(configs); ++c) {
    const Config& config = configs[c];
    const std::uint64_t config_seed = workload::DeriveSeed(master, c);
    SCOPED_TRACE(::testing::Message()
                 << "config " << config.participants << "p/" << config.prefixes
                 << "pfx seed " << config_seed);
    const Fixture fixture =
        MakeFixture(config.participants, config.prefixes, config_seed);

    std::vector<std::unique_ptr<SdxRuntime>> runtimes;
    for (const int shards : shard_counts) {
      runtimes.push_back(MakeRuntime(fixture, shards));
    }
    SdxRuntime& baseline = *runtimes.front();  // 1 shard, sequential

    // A mixed announce/withdraw stream, fed to every runtime in identical
    // batches of 24 so coalescing and the shard fan-out both engage.
    auto params = workload::UpdateStreamParams::Small(
        config.prefixes, config.burst_updates,
        workload::DeriveSeed(config_seed, 2));
    params.duration_seconds = 1e12;
    const auto stream =
        workload::UpdateGenerator(params).GenerateFor(fixture.scenario);
    ASSERT_FALSE(stream.updates.empty());

    constexpr std::size_t kChunk = 24;
    for (std::size_t base = 0; base < stream.updates.size(); base += kChunk) {
      const std::size_t n = std::min(kChunk, stream.updates.size() - base);
      const std::span<const bgp::BgpUpdate> chunk(stream.updates.data() + base,
                                                  n);
      for (auto& runtime : runtimes) runtime->ApplyUpdates(chunk);
    }

    const auto baseline_ribs = LocRibs(baseline);
    for (std::size_t r = 1; r < runtimes.size(); ++r) {
      SCOPED_TRACE(::testing::Message() << "shards=" << shard_counts[r]);
      // Control-plane state equality: every participant's Loc-RIB.
      EXPECT_EQ(baseline_ribs, LocRibs(*runtimes[r]))
          << "Loc-RIB diverged from the sequential baseline";
      // Packet-level equivalence: emissions + drop deltas per probe.
      const OracleResult result = ComparePacketBehavior(
          baseline, *runtimes[r], fixture.scenario,
          workload::DeriveSeed(config_seed, 100 + r), 300);
      EXPECT_TRUE(result.equivalent) << result.report;
      EXPECT_EQ(result.packets_checked, 300u);
    }
  }
}

}  // namespace
}  // namespace sdx::oracle
