// Randomized oracle mini-fuzz (ctest label: slow; excluded from the tier-1
// lane). Sweeps policy-bearing scenarios across participant/prefix counts
// and update bursts, asserting sequential / parallel / incremental
// compilation equivalence on every generation, within a fixed wall-clock
// budget (~60 s; the sweep stops early when the budget runs out).
//
// Deterministic: the master seed defaults to a constant and every derived
// seed is printed on failure. Override with SDX_ORACLE_SEED=<n> to explore
// or replay a different universe.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "oracle.h"
#include "workload/policy_gen.h"
#include "workload/seed.h"
#include "workload/topology_gen.h"
#include "workload/update_gen.h"

namespace sdx::oracle {
namespace {

using core::CompileOptions;

std::uint64_t MasterSeed() {
  if (const char* env = std::getenv("SDX_ORACLE_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 0xfaceb00c5eed0001ull;
}

CompileOptions Mode(bool parallel, bool incremental) {
  CompileOptions options;
  options.parallel = parallel;
  options.incremental = incremental;
  options.threads = 4;
  return options;
}

TEST(OracleFuzz, SequentialParallelIncrementalEquivalence) {
  const std::uint64_t master = MasterSeed();
  std::cout << "[ oracle ] master seed " << master
            << " (override with SDX_ORACLE_SEED)\n";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(55);

  struct Config {
    int participants;
    int prefixes;
    int burst_updates;
  };
  const Config configs[] = {
      {20, 300, 60}, {40, 600, 120}, {60, 900, 200}, {80, 1200, 300},
  };

  std::size_t generations_checked = 0;
  for (std::size_t c = 0; c < std::size(configs); ++c) {
    if (std::chrono::steady_clock::now() >= deadline) break;
    const Config& config = configs[c];
    const std::uint64_t config_seed = workload::DeriveSeed(master, c);
    SCOPED_TRACE(::testing::Message()
                 << "config " << config.participants << "p/"
                 << config.prefixes << "pfx seed " << config_seed);

    workload::TopologyParams topo;
    topo.participants = config.participants;
    topo.total_prefixes = config.prefixes;
    topo.seed = config_seed;
    const auto scenario = workload::TopologyGenerator(topo).Generate();
    workload::PolicyParams policy_params;
    policy_params.seed = workload::DeriveSeed(config_seed, 1);
    policy_params.coverage_fanout = config.participants / 2;
    const auto policies =
        workload::PolicyGenerator(policy_params).Generate(scenario);

    auto seq = BuildRuntime(scenario, policies, Mode(false, false));
    auto par = BuildRuntime(scenario, policies, Mode(true, false));
    auto inc = BuildRuntime(scenario, policies, Mode(true, true));

    auto update_params = workload::UpdateStreamParams::Small(
        config.prefixes, static_cast<std::uint64_t>(config.burst_updates) * 4,
        workload::DeriveSeed(config_seed, 2));
    update_params.duration_seconds = 1e12;
    const auto stream =
        workload::UpdateGenerator(update_params).GenerateFor(scenario);

    std::size_t next_update = 0;
    for (int generation = 0; generation < 4; ++generation) {
      if (std::chrono::steady_clock::now() >= deadline) break;
      const std::uint64_t probe_seed =
          workload::DeriveSeed(config_seed, 100 + generation);
      SCOPED_TRACE(::testing::Message()
                   << "generation " << generation << " probe seed "
                   << probe_seed);

      // One burst of updates into every runtime (fast path), then a full
      // recompile of each — sequential from scratch, parallel from
      // scratch, incremental from its memoized state.
      for (int i = 0; i < config.burst_updates &&
                      next_update < stream.updates.size();
           ++i, ++next_update) {
        const auto& update = stream.updates[next_update];
        seq->ApplyBgpUpdate(update);
        par->ApplyBgpUpdate(update);
        inc->ApplyBgpUpdate(update);
      }
      seq->FullCompile();
      par->FullCompile();
      const core::CompileStats stats = inc->FullCompile();
      EXPECT_TRUE(stats.incremental)
          << "incremental path unexpectedly fell back to full compile";

      const OracleResult seq_vs_par =
          ComparePacketBehavior(*seq, *par, scenario, probe_seed, 250);
      ASSERT_TRUE(seq_vs_par.equivalent)
          << "seq vs par:\n" << seq_vs_par.report;
      const OracleResult seq_vs_inc = ComparePacketBehavior(
          *seq, *inc, scenario, workload::DeriveSeed(probe_seed, 1), 250);
      ASSERT_TRUE(seq_vs_inc.equivalent)
          << "seq vs inc:\n" << seq_vs_inc.report;
      ++generations_checked;
    }
  }
  std::cout << "[ oracle ] " << generations_checked
            << " generations checked\n";
  EXPECT_GT(generations_checked, 0u);
}

}  // namespace
}  // namespace sdx::oracle
