// Packet-level equivalence oracle for the compilation pipeline.
//
// The parallel and incremental FullCompile paths (DESIGN.md §8) must be
// observationally identical to a sequential from-scratch compile. The
// oracle enforces that at the only level that matters — packets: it drives
// deterministically sampled probe packets (workload::PacketSampler) through
// two runtimes holding the same control-plane state and asserts, per
// packet, identical
//   * emissions — the multiset of (output port, post-rewrite header); the
//     fabric rewrites destination MACs to the receiving router's real MAC
//     on delivery, so emissions are independent of which VNH/VMAC a
//     compilation happened to allocate;
//   * drops — the per-reason delta of DropCounts() across the injection.
//
// Every result carries the sampler seed; a failure report embeds it so any
// mismatch replays exactly (set the same seed, rerun).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sdx/runtime.h"
#include "workload/policy_gen.h"
#include "workload/topology_gen.h"
#include "workload/traffic_gen.h"

namespace sdx::oracle {

struct OracleResult {
  bool equivalent = true;
  std::uint64_t seed = 0;
  std::size_t packets_checked = 0;
  std::size_t mismatches = 0;
  // Human-readable description of the first few mismatches, including the
  // seed and the offending packet, for replay.
  std::string report;
};

// Samples `count` packets with `seed` and compares `lhs` vs `rhs` (both
// must already be compiled). Stops recording detail after a handful of
// mismatches but always checks every packet.
OracleResult ComparePacketBehavior(core::SdxRuntime& lhs,
                                   core::SdxRuntime& rhs,
                                   const workload::IxpScenario& scenario,
                                   std::uint64_t seed, std::size_t count);

// Convenience: a runtime loaded with the scenario + policies, compiled
// under `options`. The returned runtime has had exactly one FullCompile.
std::unique_ptr<core::SdxRuntime> BuildRuntime(
    const workload::IxpScenario& scenario,
    const workload::GeneratedPolicies& policies,
    const core::CompileOptions& options);

// As above, but configured with the full RuntimeOptions value. The
// encoding-mode oracle legs use this to pin vmac_encoding explicitly
// (kLegacy vs kEncoded) instead of inheriting SDX_VMAC_ENCODING.
std::unique_ptr<core::SdxRuntime> BuildRuntime(
    const workload::IxpScenario& scenario,
    const workload::GeneratedPolicies& policies,
    const core::RuntimeOptions& options);

}  // namespace sdx::oracle
