// Tier-1 batched-ingest oracle gate: ApplyUpdates (coalescing batch
// pipeline, DESIGN.md §9) must be packet-for-packet identical to a
// sequential ApplyBgpUpdate replay of the same update stream. Seeded
// fig9-style flap bursts and fig10-style generated streams; a failing
// oracle prints the sampler seed to replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "oracle.h"
#include "workload/policy_gen.h"
#include "workload/seed.h"
#include "workload/topology_gen.h"
#include "workload/update_gen.h"

namespace sdx::oracle {
namespace {

using core::CompileOptions;
using core::SdxRuntime;

constexpr std::uint64_t kSeed = 0xba7c4ed0c0a1e5ceull;

struct Fixture {
  workload::IxpScenario scenario;
  workload::GeneratedPolicies policies;
};

Fixture MakeFixture(int participants, int prefixes, std::uint64_t seed) {
  Fixture fixture;
  workload::TopologyParams topo;
  topo.participants = participants;
  topo.total_prefixes = prefixes;
  topo.seed = seed;
  fixture.scenario = workload::TopologyGenerator(topo).Generate();
  workload::PolicyParams policy_params;
  policy_params.seed = workload::DeriveSeed(seed, 1);
  policy_params.coverage_fanout = participants / 2;
  fixture.policies =
      workload::PolicyGenerator(policy_params).Generate(fixture.scenario);
  return fixture;
}

// A fig9/fig10-style flap burst: `prefixes` distinct (peer, prefix) keys,
// each re-announced `rounds` times with escalating local-pref, interleaved
// round-robin so coalescing has to work across keys, not just runs of the
// same key. Every announcement changes the best path, so the sequential
// replay pays one fast-path compile per update while the batch pays one
// per surviving key.
std::vector<bgp::BgpUpdate> MakeFlapBurst(const SdxRuntime& runtime,
                                          const workload::IxpScenario& scenario,
                                          std::size_t prefixes,
                                          std::size_t rounds,
                                          std::uint32_t base_pref) {
  struct Key {
    bgp::AsNumber as;
    net::IPv4Prefix prefix;
  };
  std::vector<Key> keys;
  for (const auto& member : scenario.members) {
    for (const auto& prefix : member.announced) {
      keys.push_back({member.as, prefix});
      if (keys.size() == prefixes) break;
    }
    if (keys.size() == prefixes) break;
  }
  std::vector<bgp::BgpUpdate> burst;
  burst.reserve(keys.size() * rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (const Key& key : keys) {
      bgp::Announcement a;
      a.from_as = key.as;
      a.route.prefix = key.prefix;
      a.route.as_path = {key.as};
      a.route.local_pref = base_pref + static_cast<std::uint32_t>(round);
      a.route.next_hop = runtime.RouterIp(key.as);
      burst.push_back(bgp::BgpUpdate{a});
    }
  }
  return burst;
}

TEST(OracleBatch, BatchedFlapBurstMatchesSequentialReplay) {
  const Fixture fixture = MakeFixture(40, 600, kSeed);
  const CompileOptions options;  // the defaults both entry points share
  auto seq = BuildRuntime(fixture.scenario, fixture.policies, options);
  auto bat = BuildRuntime(fixture.scenario, fixture.policies, options);

  const auto burst =
      MakeFlapBurst(*seq, fixture.scenario, /*prefixes=*/8, /*rounds=*/8,
                    /*base_pref=*/500);
  ASSERT_EQ(burst.size(), 64u);

  for (const auto& update : burst) seq->ApplyBgpUpdate(update);
  const core::BatchStats stats = bat->ApplyUpdates(burst);
  // 8 rounds per key coalesce to one survivor each.
  EXPECT_EQ(stats.updates_applied, 8u);
  EXPECT_EQ(stats.updates_coalesced, 56u);
  EXPECT_TRUE(stats.compiled);

  const OracleResult result = ComparePacketBehavior(
      *seq, *bat, fixture.scenario, workload::DeriveSeed(kSeed, 2), 500);
  EXPECT_TRUE(result.equivalent) << result.report;
  EXPECT_EQ(result.packets_checked, 500u);
}

TEST(OracleBatch, BatchedGeneratedStreamMatchesSequentialReplay) {
  const Fixture fixture = MakeFixture(40, 600, kSeed + 1);
  const CompileOptions options;
  auto seq = BuildRuntime(fixture.scenario, fixture.policies, options);
  auto bat = BuildRuntime(fixture.scenario, fixture.policies, options);

  // A fig10-style mixed announce/withdraw stream, chunked into batches of
  // 16 on the batched side.
  auto params = workload::UpdateStreamParams::Small(600, 192, kSeed + 2);
  params.duration_seconds = 1e12;
  const auto stream =
      workload::UpdateGenerator(params).GenerateFor(fixture.scenario);
  ASSERT_FALSE(stream.updates.empty());

  for (const auto& update : stream.updates) seq->ApplyBgpUpdate(update);
  constexpr std::size_t kChunk = 16;
  for (std::size_t base = 0; base < stream.updates.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, stream.updates.size() - base);
    bat->ApplyUpdates(
        std::span<const bgp::BgpUpdate>(stream.updates.data() + base, n));
  }

  const OracleResult result = ComparePacketBehavior(
      *seq, *bat, fixture.scenario, workload::DeriveSeed(kSeed, 3), 500);
  EXPECT_TRUE(result.equivalent) << result.report;
}

// The queue entry point (EnqueueUpdate + batch window auto-flush) is the
// same pipeline: window-4 ingestion of a flap burst must match the
// sequential replay packet-for-packet too.
TEST(OracleBatch, BatchWindowIngestMatchesSequentialReplay) {
  const Fixture fixture = MakeFixture(30, 400, kSeed + 4);
  const CompileOptions options;
  auto seq = BuildRuntime(fixture.scenario, fixture.policies, options);
  auto bat = BuildRuntime(fixture.scenario, fixture.policies, options);

  const auto burst =
      MakeFlapBurst(*seq, fixture.scenario, /*prefixes=*/6, /*rounds=*/4,
                    /*base_pref=*/400);
  for (const auto& update : burst) seq->ApplyBgpUpdate(update);

  bat->SetBatchWindow(4);
  for (const auto& update : burst) bat->EnqueueUpdate(update);
  bat->Flush();  // remainder, if the burst size is not a multiple of 4
  EXPECT_EQ(bat->pending_updates(), 0u);

  const OracleResult result = ComparePacketBehavior(
      *seq, *bat, fixture.scenario, workload::DeriveSeed(kSeed, 5), 400);
  EXPECT_TRUE(result.equivalent) << result.report;
}

}  // namespace
}  // namespace sdx::oracle
