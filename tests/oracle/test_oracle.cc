// Tier-1 equivalence-oracle tests: the parallel and incremental FullCompile
// paths must be packet-for-packet identical to a sequential from-scratch
// compile, across policy edits, BGP churn, and FEC/VNH regrouping. Every
// comparison is seeded; a failing oracle prints the seed to replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "oracle.h"
#include "workload/policy_gen.h"
#include "workload/seed.h"
#include "workload/topology_gen.h"
#include "workload/traffic_gen.h"
#include "workload/update_gen.h"

namespace sdx::oracle {
namespace {

using core::CompileOptions;
using core::SdxRuntime;

constexpr std::uint64_t kSeed = 0x5d1c0ffee0ddba11ull;

CompileOptions Sequential() {
  CompileOptions options;
  options.parallel = false;
  options.incremental = false;
  return options;
}

CompileOptions Parallel(int threads = 4) {
  CompileOptions options;
  options.parallel = true;
  options.incremental = false;
  options.threads = threads;
  return options;
}

CompileOptions Incremental(int threads = 4) {
  CompileOptions options;
  options.parallel = true;
  options.incremental = true;
  options.threads = threads;
  return options;
}

struct Fixture {
  workload::IxpScenario scenario;
  workload::GeneratedPolicies policies;
};

Fixture MakeFixture(int participants, int prefixes, std::uint64_t seed) {
  Fixture fixture;
  workload::TopologyParams topo;
  topo.participants = participants;
  topo.total_prefixes = prefixes;
  topo.seed = seed;
  fixture.scenario = workload::TopologyGenerator(topo).Generate();
  workload::PolicyParams policy_params;
  policy_params.seed = workload::DeriveSeed(seed, 1);
  policy_params.coverage_fanout = participants / 2;
  fixture.policies =
      workload::PolicyGenerator(policy_params).Generate(fixture.scenario);
  return fixture;
}

// A minimal single-participant edit: change the first clause's match
// predicate (to one the packet sampler hits often) while keeping its
// target and destination restrictions, so the FEC partition is unchanged
// and only the edited sender's blocks should recompile. Returns the
// edited AS.
bgp::AsNumber EditOnePolicy(SdxRuntime& runtime, const Fixture& fixture) {
  for (const auto& [as, clauses] : fixture.policies.outbound) {
    if (clauses.empty()) continue;
    auto edited = clauses;
    edited.front().match = policy::Predicate::SrcIp(
        net::IPv4Prefix(net::IPv4Address(0x80000000u), 1));
    runtime.SetOutboundPolicy(as, edited);
    return as;
  }
  ADD_FAILURE() << "fixture has no editable outbound policy";
  return 0;
}

TEST(Oracle, ParallelMatchesSequential) {
  const Fixture fixture = MakeFixture(40, 600, kSeed);
  auto seq = BuildRuntime(fixture.scenario, fixture.policies, Sequential());
  auto par = BuildRuntime(fixture.scenario, fixture.policies, Parallel());
  const OracleResult result = ComparePacketBehavior(
      *seq, *par, fixture.scenario, workload::DeriveSeed(kSeed, 2), 500);
  EXPECT_TRUE(result.equivalent) << result.report;
  EXPECT_EQ(result.packets_checked, 500u);
}

TEST(Oracle, IncrementalAfterPolicyEditMatchesSequential) {
  const Fixture fixture = MakeFixture(40, 600, kSeed + 1);
  auto seq = BuildRuntime(fixture.scenario, fixture.policies, Sequential());
  auto inc = BuildRuntime(fixture.scenario, fixture.policies, Incremental());

  const bgp::AsNumber edited = EditOnePolicy(*seq, fixture);
  ASSERT_EQ(edited, EditOnePolicy(*inc, fixture));
  seq->FullCompile();
  const core::CompileStats stats = inc->FullCompile();
  EXPECT_TRUE(stats.incremental);
  EXPECT_GT(stats.blocks_reused, 0u);
  EXPECT_GT(stats.blocks_recompiled, 0u);
  EXPECT_EQ(stats.blocks_total, stats.blocks_reused + stats.blocks_recompiled);

  const OracleResult result = ComparePacketBehavior(
      *seq, *inc, fixture.scenario, workload::DeriveSeed(kSeed, 3), 500);
  EXPECT_TRUE(result.equivalent) << result.report;
}

TEST(Oracle, IncrementalAfterBgpChurnMatchesSequential) {
  const Fixture fixture = MakeFixture(40, 600, kSeed + 2);
  auto inc = BuildRuntime(fixture.scenario, fixture.policies, Incremental());

  auto update_params =
      workload::UpdateStreamParams::Small(600, 200, kSeed + 3);
  update_params.duration_seconds = 1e12;
  const auto stream =
      workload::UpdateGenerator(update_params).GenerateFor(fixture.scenario);
  ASSERT_FALSE(stream.updates.empty());

  // Reference: same history into a sequential runtime, compiled from
  // scratch at the end.
  auto seq = BuildRuntime(fixture.scenario, fixture.policies, Sequential());
  for (const auto& update : stream.updates) {
    inc->ApplyBgpUpdate(update);
    seq->ApplyBgpUpdate(update);
  }
  seq->FullCompile();
  const core::CompileStats stats = inc->FullCompile();
  EXPECT_TRUE(stats.incremental);

  const OracleResult result = ComparePacketBehavior(
      *seq, *inc, fixture.scenario, workload::DeriveSeed(kSeed, 4), 500);
  EXPECT_TRUE(result.equivalent) << result.report;
}

// Announcing a fresh prefix changes the FEC grouping and allocates a new
// VNH; the incremental compile must fold it in rather than reuse stale
// groups (the regression the block fingerprints guard against).
TEST(Oracle, IncrementalAfterFecVnhChangeMatchesSequential) {
  const Fixture fixture = MakeFixture(40, 600, kSeed + 4);
  auto seq = BuildRuntime(fixture.scenario, fixture.policies, Sequential());
  auto inc = BuildRuntime(fixture.scenario, fixture.policies, Incremental());

  // A prefix far outside the generator's universe, announced by the
  // biggest announcer so coverage clauses pick it up.
  const auto announcer =
      std::max_element(fixture.scenario.members.begin(),
                       fixture.scenario.members.end(),
                       [](const auto& a, const auto& b) {
                         return a.announced.size() < b.announced.size();
                       })
          ->as;
  const net::IPv4Prefix fresh(net::IPv4Address(203, 0, 113, 0), 24);
  seq->AnnouncePrefix(announcer, fresh);
  inc->AnnouncePrefix(announcer, fresh);
  seq->FullCompile();
  const core::CompileStats stats = inc->FullCompile();
  EXPECT_TRUE(stats.incremental);

  workload::IxpScenario probe_universe = fixture.scenario;
  probe_universe.prefixes.push_back(fresh);
  const OracleResult result = ComparePacketBehavior(
      *seq, *inc, probe_universe, workload::DeriveSeed(kSeed, 5), 500);
  EXPECT_TRUE(result.equivalent) << result.report;
}

// Hand-built Figure-1-style check that a cached classifier never survives
// a policy edit: after retargeting the web clause the packet must follow
// the new policy, and the incremental compile must agree with a sequential
// rebuild of the same state.
TEST(Oracle, CachedClassifierNeverSurvivesPolicyEdit) {
  constexpr bgp::AsNumber kA = 100, kB = 200, kC = 300;
  const net::IPv4Prefix p(net::IPv4Address(10, 1, 0, 0), 16);

  auto build = [&](const CompileOptions& options) {
    auto runtime = std::make_unique<SdxRuntime>();
    runtime->SetCompileOptions(options);
    runtime->AddParticipant(kA, 1);
    runtime->AddParticipant(kB, 1);
    runtime->AddParticipant(kC, 1);
    runtime->AnnouncePrefix(kB, p, {kB, 900});
    runtime->AnnouncePrefix(kC, p, {kC});  // C is best (shorter path)
    core::OutboundClause web;
    web.match = policy::Predicate::DstPort(80);
    web.to = kB;
    runtime->SetOutboundPolicy(kA, {web});
    runtime->FullCompile();
    return runtime;
  };

  auto inc = build(Incremental());
  auto seq = build(Sequential());

  net::Packet web_packet;
  web_packet.header.src_ip = net::IPv4Address(10, 99, 0, 1);
  web_packet.header.dst_ip = net::IPv4Address(10, 1, 1, 1);
  web_packet.header.proto = net::kProtoTcp;
  web_packet.header.dst_port = 80;
  web_packet.size_bytes = 100;

  const net::PortId port_b = inc->topology().PhysicalPortOf(kB, 0).id;
  const net::PortId port_c = inc->topology().PhysicalPortOf(kC, 0).id;
  auto out = inc->InjectFromParticipant(kA, web_packet);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out_port, port_b);

  // Retarget the clause to C; the old compiled block must not be reused.
  core::OutboundClause web_to_c;
  web_to_c.match = policy::Predicate::DstPort(80);
  web_to_c.to = kC;
  inc->SetOutboundPolicy(kA, {web_to_c});
  seq->SetOutboundPolicy(kA, {web_to_c});
  const core::CompileStats stats = inc->FullCompile();
  EXPECT_TRUE(stats.incremental);
  seq->FullCompile();

  out = inc->InjectFromParticipant(kA, web_packet);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out_port, port_c);

  workload::IxpScenario universe;
  universe.members.push_back({kA, 1, workload::Category::kEyeball, {}});
  universe.members.push_back({kB, 1, workload::Category::kTransit, {p}});
  universe.members.push_back({kC, 1, workload::Category::kContent, {p}});
  universe.prefixes.push_back(p);
  const OracleResult result = ComparePacketBehavior(
      *seq, *inc, universe, workload::DeriveSeed(kSeed, 6), 300);
  EXPECT_TRUE(result.equivalent) << result.report;
}

// The sampler is deterministic in its seed, and an oracle failure report
// names the seed, so any mismatch replays exactly.
TEST(Oracle, ReplaysFromPrintedSeed) {
  const Fixture fixture = MakeFixture(30, 400, kSeed + 5);
  workload::PacketSampler a(fixture.scenario, 1234);
  workload::PacketSampler b(fixture.scenario, 1234);
  for (int i = 0; i < 200; ++i) {
    const auto pa = a.Next();
    const auto pb = b.Next();
    EXPECT_EQ(pa.from, pb.from);
    EXPECT_EQ(pa.header, pb.header);
  }
  workload::PacketSampler c(fixture.scenario, 1235);
  bool diverged = false;
  workload::PacketSampler a2(fixture.scenario, 1234);
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = !(a2.Next().header == c.Next().header);
  }
  EXPECT_TRUE(diverged);

  // Force a mismatch: one runtime carries an extra inbound rewrite on the
  // biggest announcer, so delivered headers differ.
  auto lhs = BuildRuntime(fixture.scenario, fixture.policies, Sequential());
  auto rhs = BuildRuntime(fixture.scenario, fixture.policies, Sequential());
  const auto victim =
      std::max_element(fixture.scenario.members.begin(),
                       fixture.scenario.members.end(),
                       [](const auto& a, const auto& b) {
                         return a.announced.size() < b.announced.size();
                       })
          ->as;
  core::InboundClause rewrite;
  rewrite.rewrites.SetDstIp(net::IPv4Address(192, 0, 2, 1));
  rhs->SetInboundPolicy(victim, {rewrite});
  rhs->FullCompile();

  const std::uint64_t seed = 4242;
  const OracleResult result =
      ComparePacketBehavior(*lhs, *rhs, fixture.scenario, seed, 500);
  ASSERT_FALSE(result.equivalent);
  EXPECT_EQ(result.seed, seed);
  EXPECT_NE(result.report.find("4242"), std::string::npos) << result.report;

  // Replaying with the printed seed reproduces the identical verdict.
  const OracleResult replay =
      ComparePacketBehavior(*lhs, *rhs, fixture.scenario, result.seed, 500);
  EXPECT_EQ(replay.mismatches, result.mismatches);
  EXPECT_EQ(replay.report, result.report);
}

}  // namespace
}  // namespace sdx::oracle
