#include "oracle.h"

#include <algorithm>
#include <array>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

namespace sdx::oracle {

namespace {

// One observable outcome of an injection: sorted emission descriptions plus
// the per-reason drop delta.
struct Observation {
  std::vector<std::string> emissions;
  std::array<std::uint64_t, obs::kDropReasonCount> drop_delta{};

  friend bool operator==(const Observation&, const Observation&) = default;
};

Observation Inject(core::SdxRuntime& runtime,
                   const workload::SampledPacket& sample) {
  const obs::DropCounters before = runtime.DropCounts();
  net::Packet packet;
  packet.header = sample.header;
  packet.size_bytes = 64;
  auto emissions = runtime.InjectFromParticipant(sample.from, packet);
  const obs::DropCounters after = runtime.DropCounts();

  Observation out;
  out.emissions.reserve(emissions.size());
  for (const auto& emission : emissions) {
    std::ostringstream line;
    line << "port=" << emission.out_port << " "
         << emission.packet.header.ToString();
    out.emissions.push_back(line.str());
  }
  std::sort(out.emissions.begin(), out.emissions.end());
  for (std::size_t i = 0; i < obs::kDropReasonCount; ++i) {
    const obs::DropReason reason = obs::kAllDropReasons[i];
    out.drop_delta[i] = after.count(reason) - before.count(reason);
  }
  return out;
}

void Describe(std::ostream& os, const Observation& observation) {
  if (observation.emissions.empty()) {
    os << "    (no emissions)\n";
  }
  for (const auto& emission : observation.emissions) {
    os << "    " << emission << "\n";
  }
  for (std::size_t i = 0; i < obs::kDropReasonCount; ++i) {
    if (observation.drop_delta[i] != 0) {
      os << "    drop " << obs::DropReasonName(obs::kAllDropReasons[i])
         << " +" << observation.drop_delta[i] << "\n";
    }
  }
}

}  // namespace

OracleResult ComparePacketBehavior(core::SdxRuntime& lhs,
                                   core::SdxRuntime& rhs,
                                   const workload::IxpScenario& scenario,
                                   std::uint64_t seed, std::size_t count) {
  constexpr std::size_t kMaxReported = 5;
  OracleResult result;
  result.seed = seed;
  workload::PacketSampler sampler(scenario, seed);
  std::ostringstream report;
  for (std::size_t i = 0; i < count; ++i) {
    const workload::SampledPacket sample = sampler.Next();
    const Observation a = Inject(lhs, sample);
    const Observation b = Inject(rhs, sample);
    ++result.packets_checked;
    if (a == b) continue;
    ++result.mismatches;
    result.equivalent = false;
    if (result.mismatches > kMaxReported) continue;
    report << "packet " << i << " (sampler seed " << seed
           << "): from AS" << sample.from << " "
           << sample.header.ToString() << "\n  lhs:\n";
    Describe(report, a);
    report << "  rhs:\n";
    Describe(report, b);
  }
  if (!result.equivalent) {
    report << result.mismatches << "/" << result.packets_checked
           << " packets diverged; replay with sampler seed " << seed << "\n";
    result.report = report.str();
  }
  return result;
}

std::unique_ptr<core::SdxRuntime> BuildRuntime(
    const workload::IxpScenario& scenario,
    const workload::GeneratedPolicies& policies,
    const core::CompileOptions& options) {
  auto runtime = std::make_unique<core::SdxRuntime>();
  runtime->SetCompileOptions(options);
  workload::Install(*runtime, scenario, policies);
  runtime->FullCompile();
  return runtime;
}

std::unique_ptr<core::SdxRuntime> BuildRuntime(
    const workload::IxpScenario& scenario,
    const workload::GeneratedPolicies& policies,
    const core::RuntimeOptions& options) {
  auto runtime = std::make_unique<core::SdxRuntime>();
  runtime->Configure(options);
  workload::Install(*runtime, scenario, policies);
  runtime->FullCompile();
  return runtime;
}

}  // namespace sdx::oracle
