// Tier-1 dataplane-backend oracle: the compiled (tuple-space-search) flow
// table backend must be packet-for-packet identical to the linear reference
// scan — same emissions, same per-reason drops — on generated SDX rule sets
// under seeded fuzz traffic. This is the end-to-end counterpart of the
// table-level equivalence in test_classifier_backend; here the rules are
// the real compiler's output, not synthetic fuzz rules.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "dataplane/flow_table.h"
#include "oracle.h"
#include "workload/policy_gen.h"
#include "workload/seed.h"
#include "workload/topology_gen.h"
#include "workload/traffic_gen.h"

namespace sdx::oracle {
namespace {

using core::CompileOptions;
using core::SdxRuntime;
using dataplane::FlowTable;

constexpr std::uint64_t kSeed = 0xFA57'7AB1'E000'0001ull;

struct Fixture {
  workload::IxpScenario scenario;
  workload::GeneratedPolicies policies;
};

Fixture MakeFixture(int participants, int prefixes, std::uint64_t seed) {
  Fixture fixture;
  workload::TopologyParams topo;
  topo.participants = participants;
  topo.total_prefixes = prefixes;
  topo.seed = seed;
  fixture.scenario = workload::TopologyGenerator(topo).Generate();
  workload::PolicyParams policy_params;
  policy_params.seed = workload::DeriveSeed(seed, 1);
  policy_params.coverage_fanout = participants / 2;
  fixture.policies =
      workload::PolicyGenerator(policy_params).Generate(fixture.scenario);
  return fixture;
}

TEST(DataplaneOracle, CompiledBackendMatchesLinear) {
  const Fixture fixture = MakeFixture(40, 600, kSeed);
  auto linear =
      BuildRuntime(fixture.scenario, fixture.policies, CompileOptions());
  auto compiled =
      BuildRuntime(fixture.scenario, fixture.policies, CompileOptions());
  linear->SetDataPlaneBackend(FlowTable::Backend::kLinear);
  compiled->SetDataPlaneBackend(FlowTable::Backend::kCompiled);

  const OracleResult result = ComparePacketBehavior(
      *linear, *compiled, fixture.scenario, workload::DeriveSeed(kSeed, 2),
      800);
  EXPECT_TRUE(result.equivalent) << result.report;
  EXPECT_EQ(result.packets_checked, 800u);
  // The real rule set must exercise a multi-tuple compile, or this oracle
  // proves nothing about the interesting path.
  EXPECT_GT(compiled->data_plane().table().CompiledTupleCount(), 1u);
}

TEST(DataplaneOracle, CompiledBackendMatchesLinearAfterRecompile) {
  // Policy edit + FullCompile swaps the installed generation (bulk
  // mutation → full classifier rebuild); the backends must still agree.
  const Fixture fixture = MakeFixture(40, 600, kSeed + 1);
  auto linear =
      BuildRuntime(fixture.scenario, fixture.policies, CompileOptions());
  auto compiled =
      BuildRuntime(fixture.scenario, fixture.policies, CompileOptions());
  linear->SetDataPlaneBackend(FlowTable::Backend::kLinear);
  compiled->SetDataPlaneBackend(FlowTable::Backend::kCompiled);

  for (const auto& [as, clauses] : fixture.policies.outbound) {
    if (clauses.empty()) continue;
    auto edited = clauses;
    edited.front().match = policy::Predicate::SrcIp(
        net::IPv4Prefix(net::IPv4Address(0x80000000u), 1));
    linear->SetOutboundPolicy(as, edited);
    compiled->SetOutboundPolicy(as, edited);
    break;
  }
  linear->FullCompile();
  compiled->FullCompile();

  const OracleResult result = ComparePacketBehavior(
      *linear, *compiled, fixture.scenario, workload::DeriveSeed(kSeed, 3),
      500);
  EXPECT_TRUE(result.equivalent) << result.report;
}

TEST(DataplaneOracle, BatchInjectionMatchesPerPacket) {
  // InjectFromParticipantBatch must be observably identical to injecting
  // the same packets one at a time: same emissions in order, same drops.
  const Fixture fixture = MakeFixture(30, 400, kSeed + 2);
  auto one_by_one =
      BuildRuntime(fixture.scenario, fixture.policies, CompileOptions());
  auto batched =
      BuildRuntime(fixture.scenario, fixture.policies, CompileOptions());

  // Sample a block of traffic and group it into per-sender bursts (a
  // batch injection is per sending AS, like a border router's tx ring).
  workload::PacketSampler sampler(fixture.scenario,
                                  workload::DeriveSeed(kSeed, 4));
  std::map<bgp::AsNumber, std::vector<net::Packet>> bursts;
  for (int i = 0; i < 512; ++i) {
    const auto sample = sampler.Next();
    bursts[sample.from].push_back({sample.header, 100});
  }

  std::size_t checked = 0;
  for (const auto& [from, burst] : bursts) {
    std::vector<dataplane::Emission> expected;
    for (const net::Packet& packet : burst) {
      for (auto& e : one_by_one->InjectFromParticipant(from, packet)) {
        expected.push_back(std::move(e));
      }
    }
    const auto got = batched->InjectFromParticipantBatch(from, burst);
    ASSERT_EQ(got.size(), expected.size()) << "sender AS" << from;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].out_port, expected[i].out_port);
      EXPECT_EQ(got[i].packet.header, expected[i].packet.header);
    }
    checked += burst.size();
  }
  EXPECT_EQ(checked, 512u);
  for (const obs::DropReason reason : obs::kAllDropReasons) {
    EXPECT_EQ(batched->DropCounts().count(reason),
              one_by_one->DropCounts().count(reason))
        << obs::DropReasonName(reason);
  }
}

}  // namespace
}  // namespace sdx::oracle
