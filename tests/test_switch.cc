#include "dataplane/switch.h"

#include <gtest/gtest.h>

namespace sdx::dataplane {
namespace {

using net::FieldMatch;
using net::Packet;
using net::PacketHeader;

Packet MakePacket(net::PortId in_port, std::uint16_t dst_port,
                  std::uint32_t bytes = 1000) {
  Packet p;
  p.header.in_port = in_port;
  p.header.dst_port = dst_port;
  p.size_bytes = bytes;
  return p;
}

TEST(SwitchDataPlane, ForwardsMatchingPacket) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.match = FieldMatch::DstPort(80);
  rule.actions = {Action{{}, 5}};
  sw.table().Install(rule);

  auto emissions = sw.Process(MakePacket(1, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, 5u);
  EXPECT_EQ(emissions[0].packet.header.in_port, net::kNoPort);
}

TEST(SwitchDataPlane, AppliesRewritesBeforeEmission) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.match = FieldMatch();
  Action action;
  action.rewrites.SetDstIp(net::IPv4Address(74, 125, 224, 161));
  action.out_port = 2;
  rule.actions = {action};
  sw.table().Install(rule);

  auto emissions = sw.Process(MakePacket(1, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].packet.header.dst_ip,
            net::IPv4Address(74, 125, 224, 161));
}

TEST(SwitchDataPlane, MulticastEmitsOnePacketPerAction) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 2}, Action{{}, 3}};
  sw.table().Install(rule);

  auto emissions = sw.Process(MakePacket(1, 80));
  ASSERT_EQ(emissions.size(), 2u);
  EXPECT_EQ(emissions[0].out_port, 2u);
  EXPECT_EQ(emissions[1].out_port, 3u);
}

TEST(SwitchDataPlane, DropsOnMissAndCounts) {
  SwitchDataPlane sw;
  auto emissions = sw.Process(MakePacket(1, 80));
  EXPECT_TRUE(emissions.empty());
  EXPECT_EQ(sw.dropped_packets(), 1u);
}

TEST(SwitchDataPlane, TracksPortStats) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 9}};
  sw.table().Install(rule);

  sw.Process(MakePacket(4, 80, 500));
  sw.Process(MakePacket(4, 81, 700));

  const PortStats& in = sw.StatsFor(4);
  EXPECT_EQ(in.rx_packets, 2u);
  EXPECT_EQ(in.rx_bytes, 1200u);
  const PortStats& out = sw.StatsFor(9);
  EXPECT_EQ(out.tx_packets, 2u);
  EXPECT_EQ(out.tx_bytes, 1200u);
}

TEST(SwitchDataPlane, StatsForUnknownPortIsZero) {
  SwitchDataPlane sw;
  const PortStats& stats = sw.StatsFor(42);
  EXPECT_EQ(stats.rx_packets, 0u);
  EXPECT_EQ(stats.tx_packets, 0u);
}

TEST(SwitchDataPlane, ResetStatsClearsCounters) {
  SwitchDataPlane sw;
  sw.Process(MakePacket(1, 80));
  EXPECT_EQ(sw.dropped_packets(), 1u);
  sw.ResetStats();
  EXPECT_EQ(sw.dropped_packets(), 0u);
  EXPECT_EQ(sw.StatsFor(1).rx_packets, 0u);
}

}  // namespace
}  // namespace sdx::dataplane
