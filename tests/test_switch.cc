#include "dataplane/switch.h"

#include <gtest/gtest.h>

namespace sdx::dataplane {
namespace {

using net::FieldMatch;
using net::Packet;
using net::PacketHeader;

Packet MakePacket(net::PortId in_port, std::uint16_t dst_port,
                  std::uint32_t bytes = 1000) {
  Packet p;
  p.header.in_port = in_port;
  p.header.dst_port = dst_port;
  p.size_bytes = bytes;
  return p;
}

TEST(SwitchDataPlane, ForwardsMatchingPacket) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.match = FieldMatch::DstPort(80);
  rule.actions = {Action{{}, 5}};
  sw.table().Install(rule);

  auto emissions = sw.Process(MakePacket(1, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, 5u);
  EXPECT_EQ(emissions[0].packet.header.in_port, net::kNoPort);
}

TEST(SwitchDataPlane, AppliesRewritesBeforeEmission) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.match = FieldMatch();
  Action action;
  action.rewrites.SetDstIp(net::IPv4Address(74, 125, 224, 161));
  action.out_port = 2;
  rule.actions = {action};
  sw.table().Install(rule);

  auto emissions = sw.Process(MakePacket(1, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].packet.header.dst_ip,
            net::IPv4Address(74, 125, 224, 161));
}

TEST(SwitchDataPlane, MulticastEmitsOnePacketPerAction) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 2}, Action{{}, 3}};
  sw.table().Install(rule);

  auto emissions = sw.Process(MakePacket(1, 80));
  ASSERT_EQ(emissions.size(), 2u);
  EXPECT_EQ(emissions[0].out_port, 2u);
  EXPECT_EQ(emissions[1].out_port, 3u);
}

TEST(SwitchDataPlane, DropsOnMissAndCounts) {
  SwitchDataPlane sw;
  auto emissions = sw.Process(MakePacket(1, 80));
  EXPECT_TRUE(emissions.empty());
  EXPECT_EQ(sw.dropped_packets(), 1u);
}

TEST(SwitchDataPlane, TracksPortStats) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 9}};
  sw.table().Install(rule);

  sw.Process(MakePacket(4, 80, 500));
  sw.Process(MakePacket(4, 81, 700));

  const PortStats& in = sw.StatsFor(4);
  EXPECT_EQ(in.rx_packets, 2u);
  EXPECT_EQ(in.rx_bytes, 1200u);
  const PortStats& out = sw.StatsFor(9);
  EXPECT_EQ(out.tx_packets, 2u);
  EXPECT_EQ(out.tx_bytes, 1200u);
}

TEST(SwitchDataPlane, StatsForUnknownPortIsZero) {
  SwitchDataPlane sw;
  const PortStats& stats = sw.StatsFor(42);
  EXPECT_EQ(stats.rx_packets, 0u);
  EXPECT_EQ(stats.tx_packets, 0u);
}

TEST(SwitchDataPlane, ResetStatsClearsCounters) {
  SwitchDataPlane sw;
  sw.Process(MakePacket(1, 80));
  EXPECT_EQ(sw.dropped_packets(), 1u);
  sw.ResetStats();
  EXPECT_EQ(sw.dropped_packets(), 0u);
  EXPECT_EQ(sw.StatsFor(1).rx_packets, 0u);
}

// Regression: port_stats_ used to grow without bound under garbage traffic
// — every never-seen in_port allocated a fresh map entry forever. The cap
// turns over-cap unknown ingress into a counted isolation drop instead.
TEST(SwitchDataPlane, BoundsPortStatsUnderGarbageIngress) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 9}};
  sw.table().Install(rule);

  sw.SetMaxTrackedPorts(5);
  for (net::PortId port = 100; port < 104; ++port) {
    EXPECT_EQ(sw.Process(MakePacket(port, 80)).size(), 1u);
  }
  // The cap of 5 is now full: ingress ports 100..103 plus out-port 9.
  const std::uint64_t drops_before =
      sw.drops().count(obs::DropReason::kIsolationViolation);

  // A fifth never-seen ingress port is over the cap: dropped and counted,
  // and no new stats entry appears.
  EXPECT_TRUE(sw.Process(MakePacket(500, 80)).empty());
  EXPECT_EQ(sw.drops().count(obs::DropReason::kIsolationViolation),
            drops_before + 1);
  EXPECT_EQ(sw.StatsFor(500).rx_packets, 0u);

  // Already-tracked ports keep working at the cap.
  EXPECT_EQ(sw.Process(MakePacket(100, 80)).size(), 1u);
  EXPECT_EQ(sw.StatsFor(100).rx_packets, 2u);
}

TEST(SwitchDataPlane, RegisteredPortsAreExemptFromCap) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 9}};
  sw.table().Install(rule);

  sw.SetMaxTrackedPorts(0);  // nothing auto-creates
  sw.RegisterPort(7);
  EXPECT_TRUE(sw.IsRegisteredPort(7));

  EXPECT_EQ(sw.Process(MakePacket(7, 80)).size(), 1u);
  EXPECT_EQ(sw.StatsFor(7).rx_packets, 1u);
  EXPECT_TRUE(sw.Process(MakePacket(8, 80)).empty());
  EXPECT_EQ(sw.drops().count(obs::DropReason::kIsolationViolation), 1u);
}

TEST(SwitchDataPlane, StrictIngressRefusesUnregisteredPorts) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 9}};
  sw.table().Install(rule);

  sw.SetStrictIngress(true);
  sw.RegisterPort(1);
  EXPECT_EQ(sw.Process(MakePacket(1, 80)).size(), 1u);
  EXPECT_TRUE(sw.Process(MakePacket(2, 80)).empty());
  EXPECT_EQ(sw.drops().count(obs::DropReason::kIsolationViolation), 1u);
  // The refused port gained no stats entry.
  EXPECT_EQ(sw.StatsFor(2).rx_packets, 0u);
}

TEST(SwitchDataPlane, RegistrationSurvivesResetStats) {
  SwitchDataPlane sw;
  sw.SetMaxTrackedPorts(0);
  sw.RegisterPort(7);
  sw.ResetStats();
  EXPECT_TRUE(sw.IsRegisteredPort(7));
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 9}};
  sw.table().Install(rule);
  EXPECT_EQ(sw.Process(MakePacket(7, 80)).size(), 1u);
  EXPECT_EQ(sw.StatsFor(7).rx_packets, 1u);
}

TEST(SwitchDataPlane, UnrecordTxReversesEmissionAccounting) {
  SwitchDataPlane sw;
  FlowRule rule;
  rule.priority = 10;
  rule.actions = {Action{{}, 9}};
  sw.table().Install(rule);

  sw.Process(MakePacket(1, 80, 500));
  EXPECT_EQ(sw.StatsFor(9).tx_packets, 1u);
  EXPECT_EQ(sw.StatsFor(9).tx_bytes, 500u);
  sw.UnrecordTx(9, 500);
  EXPECT_EQ(sw.StatsFor(9).tx_packets, 0u);
  EXPECT_EQ(sw.StatsFor(9).tx_bytes, 0u);
}

TEST(SwitchDataPlane, ProcessBatchConcatenatesEmissionsInOrder) {
  SwitchDataPlane sw;
  FlowRule fwd;
  fwd.priority = 10;
  fwd.match = FieldMatch::DstPort(80);
  fwd.actions = {Action{{}, 5}, Action{{}, 6}};
  sw.table().Install(fwd);

  const std::vector<net::Packet> packets = {
      MakePacket(1, 80, 100),  // two emissions
      MakePacket(1, 81, 200),  // miss
      MakePacket(2, 80, 300),  // two emissions
  };
  const auto emissions = sw.ProcessBatch(packets);
  ASSERT_EQ(emissions.size(), 4u);
  EXPECT_EQ(emissions[0].out_port, 5u);
  EXPECT_EQ(emissions[1].out_port, 6u);
  EXPECT_EQ(emissions[0].packet.size_bytes, 100u);
  EXPECT_EQ(emissions[2].packet.size_bytes, 300u);
  EXPECT_EQ(sw.drops().count(obs::DropReason::kTableMiss), 1u);
  EXPECT_EQ(sw.StatsFor(1).rx_packets, 2u);
  EXPECT_EQ(sw.StatsFor(5).tx_packets, 2u);
}

}  // namespace
}  // namespace sdx::dataplane
