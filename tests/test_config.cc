// The scenario-configuration DSL (config/loader.h).
#include <gtest/gtest.h>

#include <random>

#include "config/loader.h"

namespace sdx::config {
namespace {

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

constexpr char kFigure1[] = R"(
# Figure 1 in config form
participant 100 ports=1
participant 200 ports=2
participant 300 ports=1

announce 200 10.1.0.0/16 path=200,900
announce 200 10.2.0.0/16 path=200,900
announce 200 10.3.0.0/16 path=200,900
announce 200 10.4.0.0/16 path=200,900
announce 300 10.1.0.0/16 path=300
announce 300 10.2.0.0/16 path=300
announce 300 10.3.0.0/16 path=300,901,902
announce 300 10.4.0.0/16 path=300
deny-export 200 100 10.4.0.0/16

outbound 100 match=dstport:80 to=200
outbound 100 match=dstport:443 to=300
inbound 200 match=srcip:0.0.0.0/1 port=0
inbound 200 match=srcip:128.0.0.0/1 port=1
compile
)";

net::Packet MakePacket(const char* dst, std::uint16_t dst_port,
                       const char* src = "10.99.0.1") {
  net::Packet packet;
  packet.header.src_ip = *net::IPv4Address::Parse(src);
  packet.header.dst_ip = *net::IPv4Address::Parse(dst);
  packet.header.proto = net::kProtoTcp;
  packet.header.dst_port = dst_port;
  packet.size_bytes = 100;
  return packet;
}

TEST(ScenarioLoader, LoadsFigure1AndForwards) {
  core::SdxRuntime runtime;
  ScenarioLoader loader(runtime);
  std::string error;
  ASSERT_TRUE(loader.LoadString(kFigure1, &error)) << error;
  EXPECT_TRUE(loader.compiled());

  // Web traffic diverted to B (port by inbound TE), HTTPS to C, SSH default.
  auto emissions = runtime.InjectFromParticipant(
      100, MakePacket("10.1.2.3", 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime.topology().PhysicalPortOf(200, 0).id);

  emissions = runtime.InjectFromParticipant(
      100, MakePacket("10.1.2.3", 80, "200.1.1.1"));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime.topology().PhysicalPortOf(200, 1).id);

  emissions = runtime.InjectFromParticipant(100, MakePacket("10.1.2.3", 443));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime.topology().PhysicalPortOf(300, 0).id);

  // p4 not exported by B to A: web traffic falls back to the default via C.
  emissions = runtime.InjectFromParticipant(100, MakePacket("10.4.2.3", 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime.topology().PhysicalPortOf(300, 0).id);
}

TEST(ScenarioLoader, PostCompileUpdatesUseFastPath) {
  core::SdxRuntime runtime;
  ScenarioLoader loader(runtime);
  std::string error;
  ASSERT_TRUE(loader.LoadString(kFigure1, &error)) << error;
  ASSERT_TRUE(loader.ProcessLine("withdraw 300 10.1.0.0/16", &error))
      << error;
  EXPECT_EQ(runtime.fast_path_groups(), 1u);
  auto emissions = runtime.InjectFromParticipant(100, MakePacket("10.1.2.3", 22));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime.topology().PhysicalPortOf(200, 0).id);
}

TEST(ScenarioLoader, AnnouncementOptions) {
  core::SdxRuntime runtime;
  ScenarioLoader loader(runtime);
  std::string error;
  ASSERT_TRUE(loader.LoadString(R"(
participant 100 ports=1
participant 200 ports=1
announce 200 10.0.0.0/8 path=200,900 lp=150 med=7 communities=0:100
)",
                                &error))
      << error;
  // The 0:100 community hides the route from AS 100.
  EXPECT_EQ(runtime.route_server().BestRoute(100, Pfx("10.0.0.0/8")),
            nullptr);
  // But the route exists with its attributes (visible to no one else here).
  runtime.AddParticipant(300, 1);
  runtime.AnnouncePrefix(300, Pfx("20.0.0.0/8"));
  const auto* best = runtime.route_server().GlobalBest(Pfx("10.0.0.0/8"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->local_pref, 150u);
  EXPECT_EQ(best->med, 7u);
}

TEST(ScenarioLoader, RemoteParticipantWithOrigination) {
  core::SdxRuntime runtime;
  ScenarioLoader loader(runtime);
  std::string error;
  ASSERT_TRUE(loader.LoadString(R"(
participant 100 ports=1
participant 200 ports=2
participant 400 ports=0
own 400 74.125.1.0/24
originate 400 74.125.1.0/24 74.125.1.1
inbound 400 match=dstip:74.125.1.1/32 rewrite=dstip:74.125.224.161 port=0 via=200
compile
)",
                                &error))
      << error;
  auto emissions = runtime.InjectFromParticipant(
      100, MakePacket("74.125.1.1", 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].packet.header.dst_ip,
            *net::IPv4Address::Parse("74.125.224.161"));
}

TEST(ScenarioLoader, ChainSyntax) {
  core::SdxRuntime runtime;
  ScenarioLoader loader(runtime);
  std::string error;
  ASSERT_TRUE(loader.LoadString(R"(
participant 100 ports=1
participant 200 ports=3
announce 200 203.0.113.0/24
inbound 200 match=dstport:80 chain=200:1,200:2 port=0
compile
)",
                                &error))
      << error;
  auto emissions = runtime.InjectFromParticipant(
      100, MakePacket("203.0.113.5", 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime.topology().PhysicalPortOf(200, 1).id);
}

TEST(ScenarioLoader, CommentsAndBlankLines) {
  core::SdxRuntime runtime;
  ScenarioLoader loader(runtime);
  std::string error;
  EXPECT_TRUE(loader.LoadString("\n  # nothing but comments\n\n", &error));
  EXPECT_EQ(loader.directives_processed(), 0u);
}

struct BadInput {
  const char* name;
  const char* text;
};

class ScenarioLoaderErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(ScenarioLoaderErrors, RejectedWithLineNumber) {
  core::SdxRuntime runtime;
  runtime.AddParticipant(100, 1);
  runtime.AddParticipant(200, 1);
  ScenarioLoader loader(runtime);
  std::string error;
  EXPECT_FALSE(loader.LoadString(GetParam().text, &error));
  EXPECT_NE(error.find("line"), std::string::npos) << error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioLoaderErrors,
    ::testing::Values(
        BadInput{"unknown_directive", "frobnicate 1 2 3\n"},
        BadInput{"bad_as", "participant abc\n"},
        BadInput{"bad_prefix", "announce 100 10.0.0.0/99\n"},
        BadInput{"noncanonical_prefix", "announce 100 10.1.2.3/8\n"},
        BadInput{"outbound_without_target", "outbound 100 match=dstport:80\n"},
        BadInput{"bad_match_field", "outbound 100 match=color:red to=200\n"},
        BadInput{"bad_match_value", "outbound 100 match=dstport:xx to=200\n"},
        BadInput{"bad_rewrite", "inbound 100 rewrite=dstip:999.1.1.1\n"},
        BadInput{"bad_chain", "inbound 100 chain=foo\n"},
        BadInput{"unknown_participant_policy",
                 "outbound 999 match=dstport:80 to=200\n"},
        BadInput{"duplicate_participant", "participant 100 ports=1\n"},
        BadInput{"unregistered_origination",
                 "originate 100 10.0.0.0/8 10.0.0.1\n"},
        BadInput{"announce_unknown_as", "announce 999 10.0.0.0/8\n"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

// Robustness: random garbage must be rejected cleanly (error, no crash,
// no state corruption — the runtime keeps compiling and forwarding).
TEST(ScenarioLoaderFuzz, GarbageNeverCrashes) {
  std::mt19937 rng(20240705);
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .:,=/#-\t";
  core::SdxRuntime runtime;
  ScenarioLoader loader(runtime);
  std::string error;
  ASSERT_TRUE(loader.LoadString(
      "participant 100 ports=1\nparticipant 200 ports=1\n"
      "announce 200 10.0.0.0/8\ncompile\n",
      &error))
      << error;

  const char* directives[] = {"participant", "announce",  "withdraw",
                              "deny-export", "outbound",  "inbound",
                              "own",         "originate", "compile"};
  for (int trial = 0; trial < 3000; ++trial) {
    std::string line;
    if (rng() % 2) line += std::string(directives[rng() % 9]) + " ";
    const std::size_t length = rng() % 40;
    for (std::size_t i = 0; i < length; ++i) {
      line += alphabet[rng() % (sizeof(alphabet) - 1)];
    }
    std::string message;
    loader.ProcessLine(line, &message);  // must not throw or crash
  }

  // The runtime still works after the abuse.
  runtime.FullCompile();
  net::Packet packet;
  packet.header.dst_ip = net::IPv4Address(10, 1, 2, 3);
  packet.header.proto = net::kProtoTcp;
  packet.header.dst_port = 80;
  packet.size_bytes = 64;
  EXPECT_EQ(runtime.InjectFromParticipant(100, packet).size(), 1u);
}

}  // namespace
}  // namespace sdx::config
