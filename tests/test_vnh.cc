#include "sdx/vnh.h"

#include <gtest/gtest.h>

#include <set>

namespace sdx::core {
namespace {

TEST(VnhAllocator, AllocatesFromPool) {
  VnhAllocator alloc;
  VnhBinding binding = alloc.Allocate();
  EXPECT_TRUE(alloc.InPool(binding.vnh));
  EXPECT_EQ(binding.vnh, net::IPv4Address(172, 16, 0, 1));
  EXPECT_EQ(alloc.allocated_count(), 1u);
}

TEST(VnhAllocator, UniqueBindings) {
  VnhAllocator alloc;
  std::set<std::uint32_t> vnhs;
  std::set<std::uint64_t> vmacs;
  for (int i = 0; i < 1000; ++i) {
    VnhBinding binding = alloc.Allocate();
    EXPECT_TRUE(vnhs.insert(binding.vnh.value()).second);
    EXPECT_TRUE(vmacs.insert(binding.vmac.value()).second);
  }
  EXPECT_EQ(alloc.allocated_count(), 1000u);
}

TEST(VnhAllocator, VmacLookup) {
  VnhAllocator alloc;
  VnhBinding binding = alloc.Allocate();
  auto vmac = alloc.VmacFor(binding.vnh);
  ASSERT_TRUE(vmac);
  EXPECT_EQ(*vmac, binding.vmac);
  EXPECT_FALSE(alloc.VmacFor(net::IPv4Address(9, 9, 9, 9)));
}

TEST(VnhAllocator, ReleaseAllowsReuse) {
  VnhAllocator alloc;
  VnhBinding first = alloc.Allocate();
  alloc.Release(first);
  EXPECT_EQ(alloc.allocated_count(), 0u);
  EXPECT_FALSE(alloc.VmacFor(first.vnh));
  VnhBinding second = alloc.Allocate();
  EXPECT_EQ(second.vnh, first.vnh);  // freed address reused
}

TEST(VnhAllocator, DoubleReleaseIsIdempotent) {
  VnhAllocator alloc;
  VnhBinding binding = alloc.Allocate();
  alloc.Release(binding);
  alloc.Release(binding);
  alloc.Allocate();
  VnhBinding next = alloc.Allocate();
  EXPECT_NE(next.vnh, binding.vnh);  // not handed out twice
}

TEST(VnhAllocator, SmallPoolExhausts) {
  VnhAllocator alloc(net::IPv4Prefix(net::IPv4Address(10, 0, 0, 0), 30));
  alloc.Allocate();
  alloc.Allocate();  // offsets 1 and 2; 3 is the broadcast address
  EXPECT_THROW(alloc.Allocate(), std::runtime_error);
}

TEST(VnhAllocator, RejectsTinyPool) {
  EXPECT_THROW(
      VnhAllocator(net::IPv4Prefix(net::IPv4Address(10, 0, 0, 0), 31)),
      std::invalid_argument);
}

TEST(VnhAllocator, CountsTotalAllocations) {
  VnhAllocator alloc;
  VnhBinding a = alloc.Allocate();
  alloc.Release(a);
  alloc.Allocate();
  EXPECT_EQ(alloc.total_allocations(), 2u);
}

TEST(VnhAllocator, InPoolBoundaries) {
  VnhAllocator alloc;  // 172.16.0.0/12
  EXPECT_TRUE(alloc.InPool(net::IPv4Address(172, 16, 0, 0)));
  EXPECT_TRUE(alloc.InPool(net::IPv4Address(172, 31, 255, 255)));
  EXPECT_FALSE(alloc.InPool(net::IPv4Address(172, 32, 0, 0)));
  EXPECT_FALSE(alloc.InPool(net::IPv4Address(172, 15, 255, 255)));
}

}  // namespace
}  // namespace sdx::core
