#include "sdx/vnh.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sdx::core {
namespace {

TEST(VnhAllocator, AllocatesFromPool) {
  VnhAllocator alloc;
  VnhBinding binding = alloc.Allocate();
  EXPECT_TRUE(alloc.InPool(binding.vnh));
  EXPECT_EQ(binding.vnh, net::IPv4Address(172, 16, 0, 1));
  EXPECT_EQ(alloc.allocated_count(), 1u);
}

TEST(VnhAllocator, UniqueBindings) {
  VnhAllocator alloc;
  std::set<std::uint32_t> vnhs;
  std::set<std::uint64_t> vmacs;
  for (int i = 0; i < 1000; ++i) {
    VnhBinding binding = alloc.Allocate();
    EXPECT_TRUE(vnhs.insert(binding.vnh.value()).second);
    EXPECT_TRUE(vmacs.insert(binding.vmac.value()).second);
  }
  EXPECT_EQ(alloc.allocated_count(), 1000u);
}

TEST(VnhAllocator, VmacLookup) {
  VnhAllocator alloc;
  VnhBinding binding = alloc.Allocate();
  auto vmac = alloc.VmacFor(binding.vnh);
  ASSERT_TRUE(vmac);
  EXPECT_EQ(*vmac, binding.vmac);
  EXPECT_FALSE(alloc.VmacFor(net::IPv4Address(9, 9, 9, 9)));
}

TEST(VnhAllocator, ReleaseAllowsReuse) {
  VnhAllocator alloc;
  VnhBinding first = alloc.Allocate();
  alloc.Release(first);
  EXPECT_EQ(alloc.allocated_count(), 0u);
  EXPECT_FALSE(alloc.VmacFor(first.vnh));
  VnhBinding second = alloc.Allocate();
  EXPECT_EQ(second.vnh, first.vnh);  // freed address reused
}

TEST(VnhAllocator, DoubleReleaseIsIdempotent) {
  VnhAllocator alloc;
  VnhBinding binding = alloc.Allocate();
  alloc.Release(binding);
  alloc.Release(binding);
  alloc.Allocate();
  VnhBinding next = alloc.Allocate();
  EXPECT_NE(next.vnh, binding.vnh);  // not handed out twice
}

TEST(VnhAllocator, ReleaseOutOfPoolIsNoOp) {
  VnhAllocator alloc;
  // Default-constructed bindings (0.0.0.0) and real next-hop addresses must
  // never seed the free list — their masked offsets would alias pool
  // allocations.
  alloc.Release(VnhBinding{});
  alloc.Release(VnhBinding{.vnh = net::IPv4Address(192, 168, 0, 1),
                           .vmac = net::MacAddress(0x1)});
  VnhBinding binding = alloc.Allocate();
  EXPECT_EQ(binding.vnh, net::IPv4Address(172, 16, 0, 1));
  EXPECT_EQ(alloc.allocated_count(), 1u);
}

TEST(VnhAllocator, ReleaseNeverAllocatedIsNoOp) {
  VnhAllocator alloc;
  // In-pool but never handed out: releasing it must not make it allocatable
  // ahead of the sequential cursor (that would alias the later allocation
  // of the same offset).
  alloc.Release(VnhBinding{.vnh = net::IPv4Address(172, 16, 0, 5),
                           .vmac = net::MacAddress(0x5)});
  EXPECT_EQ(alloc.Allocate().vnh, net::IPv4Address(172, 16, 0, 1));
}

TEST(VnhAllocator, ChurnWithStaleDoubleReleasesNeverDuplicates) {
  // Fast-path churn pattern: waves of allocations with half of each wave
  // released — and every release repeated with the now-stale handle. The
  // duplicate releases must be no-ops (free-set dedupe), so no VNH is ever
  // live twice.
  VnhAllocator alloc;
  std::set<std::uint32_t> live;
  std::vector<VnhBinding> handles;
  auto take = [&](int count) {
    for (int i = 0; i < count; ++i) {
      VnhBinding binding = alloc.Allocate();
      EXPECT_TRUE(live.insert(binding.vnh.value()).second)
          << "VNH handed out while live: " << binding.vnh.value();
      handles.push_back(binding);
    }
  };
  take(16);
  for (int round = 0; round < 4; ++round) {
    std::vector<VnhBinding> kept;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (i % 2 == 0) {
        alloc.Release(handles[i]);
        alloc.Release(handles[i]);  // stale duplicate — must be a no-op
        live.erase(handles[i].vnh.value());
      } else {
        kept.push_back(handles[i]);
      }
    }
    handles = std::move(kept);
    take(8);
    EXPECT_EQ(alloc.allocated_count(), live.size());
  }
}

TEST(VnhAllocator, ExhaustionAfterChurnStillThrows) {
  VnhAllocator alloc(net::IPv4Prefix(net::IPv4Address(10, 0, 0, 0), 30));
  VnhBinding a = alloc.Allocate();
  alloc.Allocate();
  alloc.Release(a);
  alloc.Release(a);  // duplicate release must not mint extra capacity
  EXPECT_EQ(alloc.Allocate().vnh, a.vnh);
  EXPECT_THROW(alloc.Allocate(), std::runtime_error);
}

TEST(VnhAllocator, SmallPoolExhausts) {
  VnhAllocator alloc(net::IPv4Prefix(net::IPv4Address(10, 0, 0, 0), 30));
  alloc.Allocate();
  alloc.Allocate();  // offsets 1 and 2; 3 is the broadcast address
  EXPECT_THROW(alloc.Allocate(), std::runtime_error);
}

TEST(VnhAllocator, RejectsTinyPool) {
  EXPECT_THROW(
      VnhAllocator(net::IPv4Prefix(net::IPv4Address(10, 0, 0, 0), 31)),
      std::invalid_argument);
}

TEST(VnhAllocator, CountsTotalAllocations) {
  VnhAllocator alloc;
  VnhBinding a = alloc.Allocate();
  alloc.Release(a);
  alloc.Allocate();
  EXPECT_EQ(alloc.total_allocations(), 2u);
}

TEST(VnhAllocator, InPoolBoundaries) {
  VnhAllocator alloc;  // 172.16.0.0/12
  EXPECT_TRUE(alloc.InPool(net::IPv4Address(172, 16, 0, 0)));
  EXPECT_TRUE(alloc.InPool(net::IPv4Address(172, 31, 255, 255)));
  EXPECT_FALSE(alloc.InPool(net::IPv4Address(172, 32, 0, 0)));
  EXPECT_FALSE(alloc.InPool(net::IPv4Address(172, 15, 255, 255)));
}

}  // namespace
}  // namespace sdx::core
