#include "net/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>

namespace sdx::net {
namespace {

IPv4Prefix Pfx(const char* text) { return *IPv4Prefix::Parse(text); }

TEST(PrefixMap, InsertFindErase) {
  PrefixMap<int> map;
  EXPECT_TRUE(map.Insert(Pfx("10.0.0.0/8"), 1));
  EXPECT_FALSE(map.Insert(Pfx("10.0.0.0/8"), 2));  // overwrite
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(Pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*map.Find(Pfx("10.0.0.0/8")), 2);
  EXPECT_EQ(map.Find(Pfx("10.0.0.0/16")), nullptr);
  EXPECT_TRUE(map.Erase(Pfx("10.0.0.0/8")));
  EXPECT_FALSE(map.Erase(Pfx("10.0.0.0/8")));
  EXPECT_TRUE(map.empty());
}

TEST(PrefixMap, LongestMatchPrefersMoreSpecific) {
  PrefixMap<int> map;
  map.Insert(Pfx("10.0.0.0/8"), 8);
  map.Insert(Pfx("10.1.0.0/16"), 16);
  map.Insert(Pfx("10.1.2.0/24"), 24);

  auto m = map.LongestMatch(IPv4Address(10, 1, 2, 3));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->first, Pfx("10.1.2.0/24"));
  EXPECT_EQ(*m->second, 24);

  m = map.LongestMatch(IPv4Address(10, 1, 9, 9));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->first, Pfx("10.1.0.0/16"));

  m = map.LongestMatch(IPv4Address(10, 9, 9, 9));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->first, Pfx("10.0.0.0/8"));

  EXPECT_FALSE(map.LongestMatch(IPv4Address(11, 0, 0, 1)));
}

TEST(PrefixMap, DefaultRouteMatchesAll) {
  PrefixMap<int> map;
  map.Insert(Pfx("0.0.0.0/0"), 0);
  auto m = map.LongestMatch(IPv4Address(203, 0, 113, 9));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->first, Pfx("0.0.0.0/0"));
}

TEST(PrefixMap, AllMatchesShortestFirst) {
  PrefixMap<int> map;
  map.Insert(Pfx("0.0.0.0/0"), 0);
  map.Insert(Pfx("10.0.0.0/8"), 8);
  map.Insert(Pfx("10.1.0.0/16"), 16);
  auto all = map.AllMatches(IPv4Address(10, 1, 0, 1));
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].first.length(), 0);
  EXPECT_EQ(all[1].first.length(), 8);
  EXPECT_EQ(all[2].first.length(), 16);
}

TEST(PrefixMap, ForEachVisitsAllEntries) {
  PrefixMap<int> map;
  map.Insert(Pfx("10.0.0.0/8"), 1);
  map.Insert(Pfx("192.168.0.0/16"), 2);
  map.Insert(Pfx("172.16.0.0/12"), 3);
  int sum = 0;
  std::size_t count = 0;
  map.ForEach([&](const IPv4Prefix&, const int& v) {
    sum += v;
    ++count;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(sum, 6);
}

TEST(PrefixMap, ForEachReconstructsPrefixes) {
  PrefixMap<int> map;
  map.Insert(Pfx("10.1.2.0/24"), 1);
  map.Insert(Pfx("128.0.0.0/1"), 2);
  std::vector<IPv4Prefix> seen;
  map.ForEach([&](const IPv4Prefix& p, const int&) { seen.push_back(p); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_NE(std::find(seen.begin(), seen.end(), Pfx("10.1.2.0/24")),
            seen.end());
  EXPECT_NE(std::find(seen.begin(), seen.end(), Pfx("128.0.0.0/1")),
            seen.end());
}

TEST(PrefixSet, BasicMembership) {
  PrefixSet set;
  EXPECT_TRUE(set.Insert(Pfx("10.0.0.0/8")));
  EXPECT_FALSE(set.Insert(Pfx("10.0.0.0/8")));
  EXPECT_TRUE(set.Contains(Pfx("10.0.0.0/8")));
  EXPECT_FALSE(set.Contains(Pfx("10.0.0.0/9")));
  EXPECT_TRUE(set.Covers(IPv4Address(10, 2, 3, 4)));
  EXPECT_FALSE(set.Covers(IPv4Address(11, 2, 3, 4)));
  EXPECT_TRUE(set.Erase(Pfx("10.0.0.0/8")));
  EXPECT_TRUE(set.empty());
}

TEST(PrefixSet, LongestMatch) {
  PrefixSet set;
  set.Insert(Pfx("10.0.0.0/8"));
  set.Insert(Pfx("10.128.0.0/9"));
  auto m = set.LongestMatch(IPv4Address(10, 200, 0, 1));
  ASSERT_TRUE(m);
  EXPECT_EQ(*m, Pfx("10.128.0.0/9"));
}

// Property: trie longest-match agrees with a brute-force scan over a random
// prefix population.
TEST(PrefixTrieProperty, LongestMatchAgreesWithBruteForce) {
  std::mt19937 rng(1234);
  PrefixMap<int> map;
  std::vector<std::pair<IPv4Prefix, int>> entries;
  for (int i = 0; i < 500; ++i) {
    auto length = static_cast<std::uint8_t>(rng() % 33);
    IPv4Prefix p(IPv4Address(static_cast<std::uint32_t>(rng())), length);
    map.Insert(p, i);
    // Keep only the last value per prefix, mirroring Insert's overwrite.
    std::erase_if(entries, [&](const auto& e) { return e.first == p; });
    entries.emplace_back(p, i);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    IPv4Address address(static_cast<std::uint32_t>(rng()));
    const std::pair<IPv4Prefix, int>* best = nullptr;
    for (const auto& entry : entries) {
      if (!entry.first.Contains(address)) continue;
      if (best == nullptr || entry.first.length() > best->first.length()) {
        best = &entry;
      }
    }
    auto got = map.LongestMatch(address);
    if (best == nullptr) {
      EXPECT_FALSE(got);
    } else {
      ASSERT_TRUE(got);
      EXPECT_EQ(got->first, best->first);
      EXPECT_EQ(*got->second, best->second);
    }
  }
}

}  // namespace
}  // namespace sdx::net
