// End-to-end tests of the SDX runtime on the paper's running example
// (Figure 1): application-specific peering + inbound traffic engineering,
// BGP-consistency, default forwarding, fast-path updates.
#include <gtest/gtest.h>

#include "sdx/runtime.h"

namespace sdx::core {
namespace {

using policy::Predicate;

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

constexpr AsNumber kA = 100;
constexpr AsNumber kB = 200;
constexpr AsNumber kC = 300;

// Figure 1 fixture:
//   * A (1 port) peers with B (2 ports) and C (1 port).
//   * B announces p1..p4 but does NOT export p4 to A; C announces p1..p5.
//   * C's paths for p1, p2, p4, p5 are best (shorter); B's for p3 is best.
//   * A: web -> B, https -> C. B: srcip-low -> B1, srcip-high -> B2.
class Figure1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_.AddParticipant(kA, 1);
    runtime_.AddParticipant(kB, 2);
    runtime_.AddParticipant(kC, 1);

    runtime_.route_server().DenyExport(kB, kA, P(4));

    for (int i = 1; i <= 4; ++i) runtime_.AnnouncePrefix(kB, P(i), {kB, 900});
    for (int i = 1; i <= 4; ++i) runtime_.AnnouncePrefix(kC, P(i), Best(i));
    // p5 is A's own prefix: nothing overrides it anywhere ("prefixes that
    // retain their default behavior, such as p5").
    runtime_.AnnouncePrefix(kA, P(5));

    OutboundClause web;
    web.match = Predicate::DstPort(80);
    web.to = kB;
    OutboundClause https;
    https.match = Predicate::DstPort(443);
    https.to = kC;
    runtime_.SetOutboundPolicy(kA, {web, https});

    InboundClause low;
    low.match = Predicate::SrcIp(Pfx("0.0.0.0/1"));
    low.port_index = 0;
    InboundClause high;
    high.match = Predicate::SrcIp(Pfx("128.0.0.0/1"));
    high.port_index = 1;
    runtime_.SetInboundPolicy(kB, {low, high});

    runtime_.FullCompile();
  }

  // p1..p5 = 10.<i>.0.0/16.
  static net::IPv4Prefix P(int i) {
    return net::IPv4Prefix(net::IPv4Address(10, static_cast<uint8_t>(i), 0, 0),
                           16);
  }

  // C's AS path: short (best) except for p3 where B wins.
  std::vector<bgp::AsNumber> Best(int i) {
    if (i == 3) return {kC, 901, 902};
    return {kC};
  }

  net::Packet PacketTo(int prefix_index, std::uint16_t dst_port,
                       net::IPv4Address src = net::IPv4Address(10, 99, 0, 1)) {
    net::Packet p;
    p.header.src_ip = src;
    p.header.dst_ip =
        net::IPv4Address(10, static_cast<uint8_t>(prefix_index), 1, 1);
    p.header.proto = net::kProtoTcp;
    p.header.dst_port = dst_port;
    p.size_bytes = 1000;
    return p;
  }

  net::PortId PortOf(AsNumber as, int index) {
    return runtime_.topology().PhysicalPortOf(as, index).id;
  }

  SdxRuntime runtime_;
};

TEST_F(Figure1Test, GroupsMatchPaperExample) {
  // §4.2 derives C' = {{p1,p2},{p3},{p4}} for this setup.
  EXPECT_EQ(runtime_.groups().groups.size(), 3u);
  const auto* g1 = runtime_.groups().FindByPrefix(P(1));
  const auto* g2 = runtime_.groups().FindByPrefix(P(2));
  const auto* g3 = runtime_.groups().FindByPrefix(P(3));
  const auto* g4 = runtime_.groups().FindByPrefix(P(4));
  ASSERT_TRUE(g1 && g2 && g3 && g4);
  EXPECT_EQ(g1->id, g2->id);
  EXPECT_NE(g1->id, g3->id);
  EXPECT_NE(g1->id, g4->id);
  EXPECT_NE(g3->id, g4->id);
  // p5 retains pure default behavior: no group.
  EXPECT_EQ(runtime_.groups().FindByPrefix(P(5)), nullptr);
  // Default next hops: C is best for p1/p2/p4, B for p3.
  EXPECT_EQ(g1->best_hop, kC);
  EXPECT_EQ(g3->best_hop, kB);
  EXPECT_EQ(g4->best_hop, kC);
}

TEST_F(Figure1Test, WebTrafficDivertedToB) {
  // Web traffic to p1 (whose best route is via C!) goes through B, and B's
  // inbound TE picks the port by source address.
  auto emissions = runtime_.InjectFromParticipant(
      kA, PacketTo(1, 80, net::IPv4Address(10, 99, 0, 1)));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));
  // Delivered with B0's real MAC (the paper's dst-MAC rewrite on delivery).
  EXPECT_EQ(emissions[0].packet.header.dst_mac,
            runtime_.topology().PhysicalPortOf(kB, 0).mac);

  emissions = runtime_.InjectFromParticipant(
      kA, PacketTo(1, 80, net::IPv4Address(200, 1, 2, 3)));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 1));
}

TEST_F(Figure1Test, HttpsTrafficDivertedToC) {
  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(3, 443));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kC, 0));
}

TEST_F(Figure1Test, NonMatchingTrafficFollowsBgpDefault) {
  // SSH to p1: best route via C.
  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(1, 22));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kC, 0));

  // SSH to p3: best route via B; B's inbound TE still applies.
  emissions = runtime_.InjectFromParticipant(kA, PacketTo(3, 22));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));
}

TEST_F(Figure1Test, BgpConsistencyBlocksIneligibleDiversion) {
  // B did not export p4 to A, so A's web policy cannot divert p4 via B:
  // the traffic follows the default route via C instead.
  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(4, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kC, 0));
}

TEST_F(Figure1Test, UntouchedPrefixUsesPlainL2Path) {
  // p5 (announced by A, no SDX policy anywhere): C's router tags it with
  // A's real port MAC (no VNH), and the fabric forwards it like a normal
  // IXP.
  const auto* router = runtime_.FindRouter(kC);
  ASSERT_NE(router, nullptr);
  auto next_hop = router->NextHopFor(net::IPv4Address(10, 5, 1, 1));
  ASSERT_TRUE(next_hop);
  EXPECT_EQ(*next_hop, runtime_.RouterIp(kA));  // real next hop, not a VNH

  auto emissions = runtime_.InjectFromParticipant(kC, PacketTo(5, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kA, 0));
  EXPECT_EQ(emissions[0].packet.header.dst_mac,
            runtime_.topology().PhysicalPortOf(kA, 0).mac);
}

TEST_F(Figure1Test, OverriddenPrefixUsesVnh) {
  const auto* router = runtime_.FindRouter(kA);
  ASSERT_NE(router, nullptr);
  auto next_hop = router->NextHopFor(net::IPv4Address(10, 1, 1, 1));
  ASSERT_TRUE(next_hop);
  EXPECT_TRUE(net::IPv4Prefix(net::IPv4Address(172, 16, 0, 0), 12)
                  .Contains(*next_hop));
}

TEST_F(Figure1Test, IsolationOtherSendersNotDiverted) {
  // C sends web traffic to p3 (best via B): A's web policy must not apply
  // to C's traffic — it follows C's default (via B) and B's inbound TE.
  auto emissions = runtime_.InjectFromParticipant(kC, PacketTo(3, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));

  // And C's traffic to p1 (C's own announcement is excluded; B's route is
  // the only candidate) flows to B, not to A's policy targets.
  emissions = runtime_.InjectFromParticipant(kC, PacketTo(1, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));
}

TEST_F(Figure1Test, AnnouncerTrafficNeverReflected) {
  // A has no route for its own prefix p5 (it is the only announcer and the
  // route server never reflects a route back): its router drops.
  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(5, 80));
  EXPECT_TRUE(emissions.empty());
}

TEST_F(Figure1Test, WithdrawalShiftsTrafficViaFastPath) {
  // Withdraw C's route for p1: the best route shifts to B; default (non-web)
  // traffic to p1 must now exit via B. This is the Figure 5a route
  // withdrawal event, handled by the §4.3.2 fast path.
  bgp::Withdrawal withdrawal;
  withdrawal.from_as = kC;
  withdrawal.prefix = P(1);
  auto stats = runtime_.ApplyBgpUpdate(bgp::BgpUpdate{withdrawal});
  EXPECT_TRUE(stats.best_route_changed);
  EXPECT_GT(stats.rules_added, 0u);
  EXPECT_EQ(runtime_.fast_path_groups(), 1u);

  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(1, 22));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));

  // Web traffic still honors A's policy (now also via B).
  emissions = runtime_.InjectFromParticipant(kA, PacketTo(1, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));
}

TEST_F(Figure1Test, BackgroundOptimizationRetiresFastPathRules) {
  bgp::Withdrawal withdrawal;
  withdrawal.from_as = kC;
  withdrawal.prefix = P(1);
  runtime_.ApplyBgpUpdate(bgp::BgpUpdate{withdrawal});
  auto fast_rules = [this] {
    std::size_t count = 0;
    for (const auto& rule : runtime_.data_plane().table().rules()) {
      if (rule.cookie == 1) ++count;  // the fast-path cookie
    }
    return count;
  };
  EXPECT_GT(fast_rules(), 0u);

  auto stats = runtime_.FullCompile();
  EXPECT_EQ(runtime_.fast_path_groups(), 0u);
  EXPECT_EQ(fast_rules(), 0u);  // fast-path rules retired
  EXPECT_GT(stats.prefix_group_count, 0u);

  // Behavior unchanged after re-optimization.
  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(1, 22));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));
}

TEST_F(Figure1Test, AnnouncementFastPathRestoresRoute) {
  bgp::Withdrawal withdrawal;
  withdrawal.from_as = kC;
  withdrawal.prefix = P(1);
  runtime_.ApplyBgpUpdate(bgp::BgpUpdate{withdrawal});

  // C re-announces p1 with the old (best) path: traffic shifts back via C.
  bgp::Announcement announcement;
  announcement.from_as = kC;
  announcement.route.prefix = P(1);
  announcement.route.as_path = {kC};
  announcement.route.next_hop = runtime_.RouterIp(kC);
  auto stats = runtime_.ApplyBgpUpdate(bgp::BgpUpdate{announcement});
  EXPECT_TRUE(stats.best_route_changed);

  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(1, 22));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kC, 0));
}

TEST_F(Figure1Test, DuplicateUpdateDoesNotRecompile) {
  bgp::Announcement announcement;
  announcement.from_as = kC;
  announcement.route.prefix = P(1);
  announcement.route.as_path = {kC};
  announcement.route.next_hop = runtime_.RouterIp(kC);
  auto stats = runtime_.ApplyBgpUpdate(bgp::BgpUpdate{announcement});
  EXPECT_FALSE(stats.best_route_changed);
  EXPECT_EQ(stats.rules_added, 0u);
}

TEST_F(Figure1Test, CompileStatsAreConsistent) {
  auto stats = runtime_.FullCompile();
  EXPECT_EQ(stats.prefix_group_count, 3u);
  EXPECT_EQ(stats.flow_rule_count, runtime_.data_plane().table().size());
  EXPECT_GT(stats.override_rule_count, 0u);
  EXPECT_GT(stats.default_rule_count, 0u);
  EXPECT_GT(stats.vnh_count, 0u);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST_F(Figure1Test, RecompileIsIdempotentOnForwarding) {
  auto before = runtime_.InjectFromParticipant(kA, PacketTo(1, 80));
  runtime_.FullCompile();
  auto after = runtime_.InjectFromParticipant(kA, PacketTo(1, 80));
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(before[0].out_port, after[0].out_port);
  EXPECT_EQ(before[0].packet.header, after[0].packet.header);
}

TEST_F(Figure1Test, OverlappingOutboundClausesFirstMatchWins) {
  // A catch-all clause after the web clause: port 80 still honors the
  // earlier clause; everything else (eligible) follows the catch-all.
  OutboundClause web;
  web.match = Predicate::DstPort(80);
  web.to = kB;
  OutboundClause rest;
  rest.match = Predicate::True();
  rest.to = kC;
  runtime_.SetOutboundPolicy(kA, {web, rest});
  runtime_.FullCompile();

  auto emissions = runtime_.InjectFromParticipant(kA, PacketTo(3, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kB, 0));
  emissions = runtime_.InjectFromParticipant(kA, PacketTo(3, 22));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port, PortOf(kC, 0));
}

TEST_F(Figure1Test, AdvertisedNextHopReflectsGrouping) {
  // Grouped prefix: VNH from the pool. Ungrouped (p5): real router address.
  auto hop = runtime_.AdvertisedNextHop(kA, P(1));
  ASSERT_TRUE(hop);
  EXPECT_TRUE(net::IPv4Prefix(net::IPv4Address(172, 16, 0, 0), 12)
                  .Contains(*hop));
  hop = runtime_.AdvertisedNextHop(kC, P(5));
  ASSERT_TRUE(hop);
  EXPECT_EQ(*hop, runtime_.RouterIp(kA));
  // No route at all (A's own prefix toward A): nothing advertised.
  EXPECT_FALSE(runtime_.AdvertisedNextHop(kA, P(5)));
}

TEST_F(Figure1Test, AdvertisedNextHopUsesFastPathVnh) {
  bgp::Withdrawal withdrawal;
  withdrawal.from_as = kC;
  withdrawal.prefix = P(1);
  runtime_.ApplyBgpUpdate(bgp::BgpUpdate{withdrawal});
  auto hop = runtime_.AdvertisedNextHop(kA, P(1));
  ASSERT_TRUE(hop);
  // Fresh fast-path VNH, resolvable via ARP.
  EXPECT_TRUE(net::IPv4Prefix(net::IPv4Address(172, 16, 0, 0), 12)
                  .Contains(*hop));
  EXPECT_TRUE(runtime_.arp().Resolve(*hop).has_value());
}

TEST_F(Figure1Test, TrafficByParticipantAccountsBothDirections) {
  runtime_.data_plane().ResetStats();
  runtime_.InjectFromParticipant(kA, PacketTo(1, 80));   // A -> B (1000 B)
  runtime_.InjectFromParticipant(kA, PacketTo(3, 443));  // A -> C
  auto matrix = runtime_.TrafficByParticipant();
  EXPECT_EQ(matrix[kA].sent_packets, 2u);
  EXPECT_EQ(matrix[kA].sent_bytes, 2000u);
  EXPECT_EQ(matrix[kA].received_packets, 0u);
  EXPECT_EQ(matrix[kB].received_packets, 1u);
  EXPECT_EQ(matrix[kC].received_packets, 1u);
  EXPECT_EQ(matrix[kB].sent_packets, 0u);
}

// Wide-area load balancing (§3.1, Figure 4b) through a remote participant.
class LoadBalancerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_.AddParticipant(kA, 1);
    runtime_.AddParticipant(kB, 2);
    runtime_.AddParticipant(kD, 0);  // remote AWS tenant

    // The tenant owns and announces the anycast service prefix via the SDX.
    runtime_.route_server().RegisterOwnership(kD, Pfx("74.125.1.0/24"));
    ASSERT_TRUE(runtime_.route_server().Announce(
        kD, Pfx("74.125.1.0/24"), net::IPv4Address(74, 125, 1, 1)));

    // Replica instances live behind B's two ports.
    InboundClause to_instance1;
    to_instance1.match = Predicate::DstIp(Pfx("74.125.1.1/32")) &&
                         Predicate::SrcIp(Pfx("96.25.160.0/24"));
    to_instance1.rewrites.SetDstIp(net::IPv4Address(74, 125, 224, 161));
    to_instance1.port_index = 0;
    to_instance1.via_participant = kB;
    InboundClause to_instance2;
    to_instance2.match = Predicate::DstIp(Pfx("74.125.1.1/32")) &&
                         Predicate::SrcIp(Pfx("128.125.163.0/24"));
    to_instance2.rewrites.SetDstIp(net::IPv4Address(74, 125, 137, 139));
    to_instance2.port_index = 1;
    to_instance2.via_participant = kB;
    runtime_.SetInboundPolicy(kD, {to_instance1, to_instance2});

    runtime_.FullCompile();
  }

  static net::IPv4Prefix Pfx(const char* text) {
    return *net::IPv4Prefix::Parse(text);
  }

  static constexpr AsNumber kD = 400;

  net::Packet Request(net::IPv4Address src) {
    net::Packet p;
    p.header.src_ip = src;
    p.header.dst_ip = net::IPv4Address(74, 125, 1, 1);
    p.header.proto = net::kProtoTcp;
    p.header.dst_port = 80;
    p.size_bytes = 500;
    return p;
  }

  SdxRuntime runtime_;
};

TEST_F(LoadBalancerTest, RequestsSplitByClientPrefix) {
  auto emissions = runtime_.InjectFromParticipant(
      kA, Request(net::IPv4Address(96, 25, 160, 9)));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime_.topology().PhysicalPortOf(kB, 0).id);
  EXPECT_EQ(emissions[0].packet.header.dst_ip,
            net::IPv4Address(74, 125, 224, 161));

  emissions = runtime_.InjectFromParticipant(
      kA, Request(net::IPv4Address(128, 125, 163, 7)));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_EQ(emissions[0].out_port,
            runtime_.topology().PhysicalPortOf(kB, 1).id);
  EXPECT_EQ(emissions[0].packet.header.dst_ip,
            net::IPv4Address(74, 125, 137, 139));
}

TEST_F(LoadBalancerTest, UnmatchedClientDropped) {
  // A client outside both LB prefixes reaches the remote participant's
  // virtual switch and falls through all clauses: dropped (the remote has
  // no physical port of its own).
  auto emissions = runtime_.InjectFromParticipant(
      kA, Request(net::IPv4Address(1, 2, 3, 4)));
  EXPECT_TRUE(emissions.empty());
}

TEST_F(LoadBalancerTest, WithdrawStopsAttractingTraffic) {
  ASSERT_TRUE(
      runtime_.route_server().WithdrawOrigination(kD, Pfx("74.125.1.0/24")));
  runtime_.FullCompile();
  // A no longer has any route to the anycast prefix: router drop.
  auto emissions = runtime_.InjectFromParticipant(
      kA, Request(net::IPv4Address(96, 25, 160, 9)));
  EXPECT_TRUE(emissions.empty());
}

}  // namespace
}  // namespace sdx::core
