// The bench-metrics regression differ and the JSON reader underneath it:
// threshold semantics (counter rel+abs, per-quantile ratios, noise floor),
// membership changes, and a round trip through the real
// MetricsSnapshot::ToJson exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/bench_diff.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace sdx::obs {
namespace {

// --- json::Parse ----------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  json::Value v = json::Parse(
      R"({"a": 1.5, "b": "x\"y", "c": [true, null, -2e3], "d": {}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.NumberAt("a"), 1.5);
  EXPECT_EQ(v.StringAt("b"), "x\"y");
  const json::Value* c = v.Find("c");
  ASSERT_TRUE(c != nullptr && c->is_array());
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_TRUE(c->array[1].is_null());
  EXPECT_DOUBLE_EQ(c->array[2].number, -2000.0);
  EXPECT_TRUE(v.Find("d")->is_object());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::Parse(""), std::runtime_error);
  EXPECT_THROW(json::Parse("{"), std::runtime_error);
  EXPECT_THROW(json::Parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(json::Parse("[1, 2,]"), std::runtime_error);
  EXPECT_THROW(json::Parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(json::Parse("\"unterminated"), std::runtime_error);
}

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(json::Quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  json::Value v = json::Parse(json::Quote("a\"b\\c\nd\te"));
  EXPECT_EQ(v.string, "a\"b\\c\nd\te");
}

// --- DiffMetrics ----------------------------------------------------------

json::Value Snapshot(const std::string& counters, const std::string& gauges,
                     const std::string& histograms) {
  return json::Parse("{\"counters\": {" + counters + "}, \"gauges\": {" +
                     gauges + "}, \"histograms\": {" + histograms + "}}");
}

std::string Hist(double count, double p50, double p95, double p99) {
  std::ostringstream os;
  os << "{\"count\": " << count << ", \"sum\": 0, \"min\": 0, \"max\": 0, "
     << "\"p50\": " << p50 << ", \"p95\": " << p95 << ", \"p99\": " << p99
     << ", \"buckets\": []}";
  return os.str();
}

TEST(BenchDiffTest, IdenticalSnapshotsAreClean) {
  json::Value snap = Snapshot("\"a\": 100", "\"g\": 2.5",
                              "\"h\": " + Hist(10, 1e-3, 2e-3, 3e-3));
  BenchDiff diff = DiffMetrics(snap, snap);
  EXPECT_FALSE(diff.regression);
  EXPECT_TRUE(diff.deltas.empty());
  EXPECT_EQ(diff.Render(), "no differences\n");
}

TEST(BenchDiffTest, DoubledP95IsARegression) {
  json::Value before =
      Snapshot("", "", "\"h\": " + Hist(10, 1e-3, 2e-3, 3e-3));
  json::Value after =
      Snapshot("", "", "\"h\": " + Hist(10, 1e-3, 4e-3, 3e-3));
  BenchDiff diff = DiffMetrics(before, after);
  EXPECT_TRUE(diff.regression);
  ASSERT_FALSE(diff.deltas.empty());
  // Flagged deltas sort first.
  EXPECT_EQ(diff.deltas[0].metric, "histogram h p95");
  EXPECT_TRUE(diff.deltas[0].regressed);
  EXPECT_NE(diff.Render().find("verdict: REGRESSION"), std::string::npos);
}

TEST(BenchDiffTest, ImprovementIsNotARegression) {
  json::Value before =
      Snapshot("", "", "\"h\": " + Hist(10, 4e-3, 4e-3, 4e-3));
  json::Value after =
      Snapshot("", "", "\"h\": " + Hist(10, 1e-3, 1e-3, 1e-3));
  BenchDiff diff = DiffMetrics(before, after);
  EXPECT_FALSE(diff.regression);
  EXPECT_FALSE(diff.deltas.empty());  // still reported, informationally
}

TEST(BenchDiffTest, NoiseFloorSuppressesTinyLatencies) {
  // 1µs -> 10µs is a 10x slowdown, but both sit below the 20µs floor.
  json::Value before = Snapshot("", "", "\"h\": " + Hist(10, 1e-6, 1e-6, 1e-6));
  json::Value after = Snapshot("", "", "\"h\": " + Hist(10, 1e-5, 1e-5, 1e-5));
  EXPECT_FALSE(DiffMetrics(before, after).regression);
  // Lowering the floor makes the same delta a regression.
  BenchDiffOptions strict;
  strict.noise_floor_seconds = 1e-7;
  EXPECT_TRUE(DiffMetrics(before, after, strict).regression);
}

TEST(BenchDiffTest, CounterNeedsBothRelativeAndAbsoluteChange) {
  // Small tally: huge relative change, tiny absolute change -> fine.
  EXPECT_FALSE(DiffMetrics(Snapshot("\"c\": 2", "", ""),
                           Snapshot("\"c\": 10", "", ""))
                   .regression);
  // Large tally: large absolute change, small relative change -> fine.
  EXPECT_FALSE(DiffMetrics(Snapshot("\"c\": 10000", "", ""),
                           Snapshot("\"c\": 10100", "", ""))
                   .regression);
  // Both thresholds crossed -> flagged, in either direction.
  EXPECT_TRUE(DiffMetrics(Snapshot("\"c\": 100", "", ""),
                          Snapshot("\"c\": 200", "", ""))
                  .regression);
  EXPECT_TRUE(DiffMetrics(Snapshot("\"c\": 200", "", ""),
                          Snapshot("\"c\": 50", "", ""))
                  .regression);
}

TEST(BenchDiffTest, BatchCountersGetTheTighterBand) {
  // 12 -> 16: within the generic 16-count absolute slack, but a 33%
  // drift in an ingest-pipeline tally crosses the batch band (rel 0.25,
  // abs 2).
  EXPECT_FALSE(DiffMetrics(Snapshot("\"c\": 12", "", ""),
                           Snapshot("\"c\": 16", "", ""))
                   .regression);
  BenchDiff diff = DiffMetrics(Snapshot("\"batch.coalesced\": 12", "", ""),
                               Snapshot("\"batch.coalesced\": 16", "", ""));
  EXPECT_TRUE(diff.regression);
  ASSERT_FALSE(diff.deltas.empty());
  EXPECT_EQ(diff.deltas[0].metric, "counter batch.coalesced");

  // Still slack for tiny jitter (abs <= 2)...
  EXPECT_FALSE(DiffMetrics(Snapshot("\"batch.count\": 10", "", ""),
                           Snapshot("\"batch.count\": 12", "", ""))
                   .regression);
  // ...and within the 25% relative band.
  EXPECT_FALSE(DiffMetrics(Snapshot("\"batch.applied\": 100", "", ""),
                           Snapshot("\"batch.applied\": 120", "", ""))
                   .regression);
  // The batch.depth histogram's observation count uses the same band.
  EXPECT_TRUE(
      DiffMetrics(Snapshot("", "", "\"batch.depth\": " + Hist(12, 1, 1, 1)),
                  Snapshot("", "", "\"batch.depth\": " + Hist(16, 1, 1, 1)))
          .regression);

  // The band is tunable like the generic one.
  BenchDiffOptions loose;
  loose.max_batch_counter_rel = 0.5;
  EXPECT_FALSE(DiffMetrics(Snapshot("\"batch.coalesced\": 12", "", ""),
                           Snapshot("\"batch.coalesced\": 16", "", ""), loose)
                   .regression);
}

TEST(BenchDiffTest, GaugesAreInformationalOnly) {
  BenchDiff diff = DiffMetrics(Snapshot("", "\"g\": 1", ""),
                               Snapshot("", "\"g\": 1000", ""));
  EXPECT_FALSE(diff.regression);
  ASSERT_EQ(diff.deltas.size(), 1u);
  EXPECT_EQ(diff.deltas[0].metric, "gauge g");
  EXPECT_FALSE(diff.deltas[0].regressed);
}

TEST(BenchDiffTest, TelemetryOverheadGaugesCarryAHardBudget) {
  // Unlike other gauges, telemetry.overhead* is an absolute band: any
  // after-value above the budget is a regression, regardless of before.
  BenchDiff over = DiffMetrics(
      Snapshot("", "\"telemetry.overhead_ratio\": 1.01", ""),
      Snapshot("", "\"telemetry.overhead_ratio\": 1.08", ""));
  EXPECT_TRUE(over.regression);
  ASSERT_EQ(over.deltas.size(), 1u);
  EXPECT_TRUE(over.deltas[0].regressed);
  EXPECT_NE(over.deltas[0].note.find("budget"), std::string::npos);

  BenchDiff under = DiffMetrics(
      Snapshot("", "\"telemetry.overhead_ratio\": 1.04", ""),
      Snapshot("", "\"telemetry.overhead_ratio\": 1.02", ""));
  EXPECT_FALSE(under.regression);

  // The budget is tunable (sdxmon diff --max-telemetry-overhead).
  BenchDiffOptions loose;
  loose.max_telemetry_overhead = 1.10;
  EXPECT_FALSE(DiffMetrics(
                   Snapshot("", "\"telemetry.overhead_ratio\": 1.01", ""),
                   Snapshot("", "\"telemetry.overhead_ratio\": 1.08", ""),
                   loose)
                   .regression);

  // Non-overhead telemetry gauges (timings, cache sizes) stay
  // informational.
  BenchDiff info = DiffMetrics(Snapshot("", "\"telemetry.on_seconds\": 1", ""),
                               Snapshot("", "\"telemetry.on_seconds\": 9", ""));
  EXPECT_FALSE(info.regression);

  // Only the exact ratio gauge is gated: its companions report the same
  // measurement on other scales (nanoseconds; the compiled-backend ratio)
  // and must not be judged against the 1.05 band.
  EXPECT_FALSE(DiffMetrics(Snapshot("", "\"telemetry.overhead_ns\": 7.1", ""),
                           Snapshot("", "\"telemetry.overhead_ns\": 7.6", ""))
                   .regression);
  EXPECT_FALSE(
      DiffMetrics(
          Snapshot("", "\"telemetry.overhead_ratio_compiled\": 1.08", ""),
          Snapshot("", "\"telemetry.overhead_ratio_compiled\": 1.12", ""))
          .regression);
}

TEST(BenchDiffTest, FastPathSpeedupGaugeCarriesAHardFloor) {
  // The fastpath.speedup band points the other way: any after-value BELOW
  // the floor is a regression — the compiled backend must keep paying for
  // itself — regardless of the before-value.
  BenchDiff below = DiffMetrics(
      Snapshot("", "\"fastpath.speedup_ratio\": 30.0", ""),
      Snapshot("", "\"fastpath.speedup_ratio\": 6.5", ""));
  EXPECT_TRUE(below.regression);
  ASSERT_EQ(below.deltas.size(), 1u);
  EXPECT_TRUE(below.deltas[0].regressed);
  EXPECT_NE(below.deltas[0].note.find("floor"), std::string::npos);

  BenchDiff above = DiffMetrics(
      Snapshot("", "\"fastpath.speedup_ratio\": 30.0", ""),
      Snapshot("", "\"fastpath.speedup_ratio\": 15.0", ""));
  EXPECT_FALSE(above.regression);

  // The floor is tunable.
  BenchDiffOptions loose;
  loose.min_fastpath_speedup = 5.0;
  EXPECT_FALSE(DiffMetrics(
                   Snapshot("", "\"fastpath.speedup_ratio\": 30.0", ""),
                   Snapshot("", "\"fastpath.speedup_ratio\": 6.5", ""),
                   loose)
                   .regression);

  // Companion gauges (Mpps, rule/tuple counts) stay informational.
  EXPECT_FALSE(DiffMetrics(Snapshot("", "\"fastpath.linear_mpps\": 0.2", ""),
                           Snapshot("", "\"fastpath.linear_mpps\": 0.1", ""))
                   .regression);
}

TEST(BenchDiffTest, RuleReductionGaugeCarriesAnOptInFloor) {
  // rules.isdx_reduction (fig7's legacy/encoded flow-rule ratio) is off by
  // default — the realizable reduction depends on the sweep's scale — and
  // becomes an absolute after-side floor when the CI bench lane opts in.
  EXPECT_FALSE(DiffMetrics(Snapshot("", "\"rules.isdx_reduction\": 20.0", ""),
                           Snapshot("", "\"rules.isdx_reduction\": 2.0", ""))
                   .regression);

  BenchDiffOptions banded;
  banded.min_rule_reduction = 10.0;
  BenchDiff below =
      DiffMetrics(Snapshot("", "\"rules.isdx_reduction\": 20.0", ""),
                  Snapshot("", "\"rules.isdx_reduction\": 2.0", ""), banded);
  EXPECT_TRUE(below.regression);
  ASSERT_EQ(below.deltas.size(), 1u);
  EXPECT_TRUE(below.deltas[0].regressed);
  EXPECT_NE(below.deltas[0].note.find("floor"), std::string::npos);

  // Like the convergence band, the floor applies even when before == after
  // — the ratio checks would skip an unchanged gauge entirely.
  BenchDiff equal =
      DiffMetrics(Snapshot("", "\"rules.isdx_reduction\": 2.0", ""),
                  Snapshot("", "\"rules.isdx_reduction\": 2.0", ""), banded);
  EXPECT_TRUE(equal.regression);

  EXPECT_FALSE(
      DiffMetrics(Snapshot("", "\"rules.isdx_reduction\": 20.0", ""),
                  Snapshot("", "\"rules.isdx_reduction\": 12.5", ""), banded)
          .regression);
}

TEST(BenchDiffTest, ConvergenceP99CarriesAnAbsoluteCeiling) {
  // "convergence."-prefixed histogram p99s get an absolute after-side band
  // (DESIGN.md §12): a tail over the budget is a regression no matter the
  // before-value — INCLUDING when before == after, which the ratio checks
  // would skip entirely.
  const std::string slow = "\"convergence.e2e.seconds\": " +
                           Hist(100, 0.1, 1.0, 3.5);
  BenchDiff equal = DiffMetrics(Snapshot("", "", slow), Snapshot("", "", slow));
  EXPECT_TRUE(equal.regression);
  ASSERT_FALSE(equal.deltas.empty());
  EXPECT_EQ(equal.deltas[0].metric, "histogram convergence.e2e.seconds p99");
  EXPECT_NE(equal.deltas[0].note.find("band"), std::string::npos);

  // Under the 2s default ceiling: clean, even against a faster before.
  const std::string fast = "\"convergence.e2e.seconds\": " +
                           Hist(100, 0.1, 0.5, 1.5);
  EXPECT_FALSE(
      DiffMetrics(Snapshot("", "", fast), Snapshot("", "", fast)).regression);

  // The ceiling is tunable (sdxmon diff --max-convergence-p99).
  BenchDiffOptions loose;
  loose.max_convergence_p99_seconds = 5.0;
  EXPECT_FALSE(DiffMetrics(Snapshot("", "", slow), Snapshot("", "", slow),
                           loose)
                   .regression);
  BenchDiffOptions strict;
  strict.max_convergence_p99_seconds = 1.0;
  EXPECT_TRUE(DiffMetrics(Snapshot("", "", fast), Snapshot("", "", fast),
                          strict)
                  .regression);

  // Non-convergence histograms keep ratio-only semantics: a huge-but-
  // stable p99 elsewhere is not flagged.
  const std::string other = "\"compile.seconds\": " + Hist(100, 1.0, 2.0, 9.0);
  EXPECT_FALSE(DiffMetrics(Snapshot("", "", other), Snapshot("", "", other))
                   .regression);
}

TEST(BenchDiffTest, ConvergenceOverheadGaugeCarriesAHardBudget) {
  // convergence.overhead_ratio mirrors telemetry.overhead_ratio: absolute
  // budget on the after-side, exact-name gauge only.
  BenchDiff over = DiffMetrics(
      Snapshot("", "\"convergence.overhead_ratio\": 1.01", ""),
      Snapshot("", "\"convergence.overhead_ratio\": 1.09", ""));
  EXPECT_TRUE(over.regression);
  ASSERT_EQ(over.deltas.size(), 1u);
  EXPECT_NE(over.deltas[0].note.find("budget"), std::string::npos);

  EXPECT_FALSE(DiffMetrics(
                   Snapshot("", "\"convergence.overhead_ratio\": 1.06", ""),
                   Snapshot("", "\"convergence.overhead_ratio\": 1.02", ""))
                   .regression);

  BenchDiffOptions loose;
  loose.max_convergence_overhead = 1.20;
  EXPECT_FALSE(DiffMetrics(
                   Snapshot("", "\"convergence.overhead_ratio\": 1.01", ""),
                   Snapshot("", "\"convergence.overhead_ratio\": 1.09", ""),
                   loose)
                   .regression);

  // Companions (off/on seconds, overhead_ns) stay informational.
  EXPECT_FALSE(
      DiffMetrics(Snapshot("", "\"convergence.overhead_ns\": 50", ""),
                  Snapshot("", "\"convergence.overhead_ns\": 500", ""))
          .regression);
}

TEST(BenchDiffTest, MembershipChangesAreReportedNotFlagged) {
  BenchDiff diff = DiffMetrics(Snapshot("\"old\": 1", "", ""),
                               Snapshot("\"new\": 1", "", ""));
  EXPECT_FALSE(diff.regression);
  ASSERT_EQ(diff.only_before.size(), 1u);
  ASSERT_EQ(diff.only_after.size(), 1u);
  EXPECT_EQ(diff.only_before[0], "counter old");
  EXPECT_EQ(diff.only_after[0], "counter new");
}

TEST(BenchDiffTest, RejectsNonSnapshotDocuments) {
  EXPECT_THROW(DiffMetrics(json::Parse("{}"), json::Parse("{}")),
               std::runtime_error);
  EXPECT_THROW(DiffMetrics(json::Parse("{\"counters\": {}}"),
                           json::Parse("{\"counters\": {}}")),
               std::runtime_error);
}

TEST(BenchDiffTest, RealSnapshotRoundTripSelfDiffsClean) {
  MetricsRegistry registry;
  registry.GetCounter("rs.updates").Increment(12345);
  registry.GetGauge("groups").Set(37.5);
  Histogram& h = registry.GetHistogram("compile.seconds");
  for (int i = 1; i <= 100; ++i) h.Observe(i * 1e-4);
  const std::string exported = registry.Snapshot().ToJson();
  json::Value doc = json::Parse(exported);  // the exporter emits valid JSON
  EXPECT_DOUBLE_EQ(doc.Find("counters")->NumberAt("rs.updates"), 12345.0);
  BenchDiff diff = DiffMetrics(doc, doc);
  EXPECT_FALSE(diff.regression);
  EXPECT_TRUE(diff.deltas.empty());
}

}  // namespace
}  // namespace sdx::obs
