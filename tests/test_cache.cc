// CompilationCache semantics, including the address-reuse hazard: the cache
// must retain each AST node it keys on, or a freed policy's address could
// be recycled by an unrelated policy and return a stale classifier.
#include <gtest/gtest.h>

#include "policy/compile.h"

namespace sdx::policy {
namespace {

TEST(CompilationCache, HitAfterPut) {
  CompilationCache cache;
  Policy p = Policy::Fwd(7);
  Compile(p, &cache);
  EXPECT_EQ(cache.hits(), 0u);
  Compile(p, &cache);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_GE(cache.size(), 1u);
}

TEST(CompilationCache, ClearResets) {
  CompilationCache cache;
  Policy p = Policy::Fwd(7);
  Compile(p, &cache);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  Compile(p, &cache);
  EXPECT_EQ(cache.hits(), 0u);  // repopulated, not hit
}

TEST(CompilationCache, TotalRulesSumsEntries) {
  CompilationCache cache;
  Policy a = Policy::Fwd(1);                                   // 1 rule
  Policy b = Policy::Guarded(Predicate::DstPort(80), a);       // 2 rules
  Compile(b, &cache);
  EXPECT_GE(cache.TotalRules(), 3u);
}

// Regression: churn thousands of short-lived policies through the cache.
// Without keep-alive on the keyed nodes, recycled heap addresses would
// alias old entries and Compile would return wrong classifiers.
TEST(CompilationCache, AddressReuseCannotAliasEntries) {
  CompilationCache cache;
  for (int round = 0; round < 5000; ++round) {
    const auto port = static_cast<net::PortId>(round % 97);
    Policy p = Policy::Guarded(
        Predicate::DstPort(static_cast<std::uint16_t>(round % 1024)),
        Policy::Fwd(port));
    Classifier compiled = Compile(p, &cache);
    net::PacketHeader header;
    header.dst_port = static_cast<std::uint16_t>(round % 1024);
    auto out = compiled.Eval(header);
    ASSERT_EQ(out.size(), 1u) << "round " << round;
    ASSERT_EQ(out[0].in_port, port) << "round " << round;
  }
}

// The cached entry survives the policy object itself being destroyed.
TEST(CompilationCache, EntryOutlivesPolicyObject) {
  CompilationCache cache;
  const void* id = nullptr;
  {
    Policy p = Policy::Fwd(3);
    id = p.id();
    Compile(p, &cache);
  }
  // The node is kept alive by the cache; the entry is still retrievable.
  const Classifier* entry = cache.Get(id);
  ASSERT_NE(entry, nullptr);
  net::PacketHeader header;
  EXPECT_EQ(entry->Eval(header)[0].in_port, 3u);
}

}  // namespace
}  // namespace sdx::policy
