// CompilationCache semantics, including the address-reuse hazard: the cache
// must retain each AST node it keys on, or a freed policy's address could
// be recycled by an unrelated policy and return a stale classifier.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "policy/compile.h"

namespace sdx::policy {
namespace {

TEST(CompilationCache, HitAfterPut) {
  CompilationCache cache;
  Policy p = Policy::Fwd(7);
  Compile(p, &cache);
  EXPECT_EQ(cache.hits(), 0u);
  Compile(p, &cache);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_GE(cache.size(), 1u);
}

TEST(CompilationCache, ClearResets) {
  CompilationCache cache;
  Policy p = Policy::Fwd(7);
  Compile(p, &cache);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  Compile(p, &cache);
  EXPECT_EQ(cache.hits(), 0u);  // repopulated, not hit
}

TEST(CompilationCache, TotalRulesSumsEntries) {
  CompilationCache cache;
  Policy a = Policy::Fwd(1);                                   // 1 rule
  Policy b = Policy::Guarded(Predicate::DstPort(80), a);       // 2 rules
  Compile(b, &cache);
  EXPECT_GE(cache.TotalRules(), 3u);
}

// Regression: churn thousands of short-lived policies through the cache.
// Without keep-alive on the keyed nodes, recycled heap addresses would
// alias old entries and Compile would return wrong classifiers.
TEST(CompilationCache, AddressReuseCannotAliasEntries) {
  CompilationCache cache;
  for (int round = 0; round < 5000; ++round) {
    const auto port = static_cast<net::PortId>(round % 97);
    Policy p = Policy::Guarded(
        Predicate::DstPort(static_cast<std::uint16_t>(round % 1024)),
        Policy::Fwd(port));
    Classifier compiled = Compile(p, &cache);
    net::PacketHeader header;
    header.dst_port = static_cast<std::uint16_t>(round % 1024);
    auto out = compiled.Eval(header);
    ASSERT_EQ(out.size(), 1u) << "round " << round;
    ASSERT_EQ(out[0].in_port, port) << "round " << round;
  }
}

// Eviction accounting accumulates across generations: every entry dropped
// by Clear() lands in evictions(), which never resets.
TEST(CompilationCache, EvictionsAccumulateAcrossClears) {
  CompilationCache cache;
  Policy a = Policy::Fwd(1);
  Policy b = Policy::Guarded(Predicate::DstPort(80), Policy::Fwd(2));
  Compile(a, &cache);
  Compile(b, &cache);
  const std::uint64_t first_generation = cache.size();
  EXPECT_GE(first_generation, 2u);
  cache.Clear();
  EXPECT_EQ(cache.evictions(), first_generation);
  Compile(a, &cache);
  const std::uint64_t second_generation = cache.size();
  cache.Clear();
  EXPECT_EQ(cache.evictions(), first_generation + second_generation);
}

// Put is first-wins: a second Put for the same node must not replace the
// stored classifier — the parallel compiler relies on Get's pointer
// stability, so a displacement would dangle concurrent readers.
TEST(CompilationCache, PutIsFirstWins) {
  CompilationCache cache;
  Policy p = Policy::Fwd(5);
  Compile(p, &cache);
  const Classifier* first = cache.Get(p.id());
  ASSERT_NE(first, nullptr);

  // A conflicting manual Put for the same id is dropped.
  cache.Put(p.id(), nullptr, Classifier::DropAll());
  const Classifier* second = cache.Get(p.id());
  EXPECT_EQ(first, second);
  net::PacketHeader header;
  EXPECT_EQ(second->Eval(header)[0].in_port, 5u);
}

// Concurrent Get/Put/Compile over a shared cache: exercised under TSan in
// CI. Every thread must read a coherent entry for its own policy.
TEST(CompilationCache, ConcurrentCompileIsCoherent) {
  CompilationCache cache;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  // Shared policies compiled by every thread (maximal Put collisions).
  std::vector<Policy> shared;
  for (int i = 0; i < 16; ++i) {
    shared.push_back(Policy::Guarded(
        Predicate::DstPort(static_cast<std::uint16_t>(80 + i)),
        Policy::Fwd(static_cast<net::PortId>(i + 1))));
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t i =
            static_cast<std::size_t>(t + round) % shared.size();
        Classifier compiled = Compile(shared[i], &cache);
        net::PacketHeader header;
        header.dst_port = static_cast<std::uint16_t>(80 + i);
        auto out = compiled.Eval(header);
        if (out.size() != 1 ||
            out[0].in_port != static_cast<net::PortId>(i + 1)) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Every distinct node compiled exactly once (first-wins, no blowup).
  EXPECT_GE(cache.size(), shared.size());
  EXPECT_LE(cache.size(), shared.size() * 4);
}

// Generation retire: after Clear() a recompiled (edited) policy object can
// land on a recycled address, so the cache must treat it as a fresh entry
// — the old classifier is unreachable.
TEST(CompilationCache, ClearedEntryNeverServesNextGeneration) {
  CompilationCache cache;
  const void* old_id = nullptr;
  {
    Policy p = Policy::Fwd(1);
    old_id = p.id();
    Compile(p, &cache);
    ASSERT_NE(cache.Get(old_id), nullptr);
  }
  cache.Clear();  // generation retire: the edit recompiles from scratch
  EXPECT_EQ(cache.Get(old_id), nullptr);
  // A new-generation policy (possibly at the recycled address) compiles
  // fresh and serves its own result.
  Policy edited = Policy::Fwd(2);
  Classifier compiled = Compile(edited, &cache);
  net::PacketHeader header;
  EXPECT_EQ(compiled.Eval(header)[0].in_port, 2u);
}

// The cached entry survives the policy object itself being destroyed.
TEST(CompilationCache, EntryOutlivesPolicyObject) {
  CompilationCache cache;
  const void* id = nullptr;
  {
    Policy p = Policy::Fwd(3);
    id = p.id();
    Compile(p, &cache);
  }
  // The node is kept alive by the cache; the entry is still retrievable.
  const Classifier* entry = cache.Get(id);
  ASSERT_NE(entry, nullptr);
  net::PacketHeader header;
  EXPECT_EQ(entry->Eval(header)[0].in_port, 3u);
}

}  // namespace
}  // namespace sdx::policy
