// FlowRecorder (DESIGN.md §10): deterministic sampling, sFlow-style
// volume estimation, bounded-cache eviction, idle/active timeouts, and
// byte-identical JSONL export for a fixed seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flow_recorder.h"

namespace sdx::obs {
namespace {

FlowRecorder::Options SampleEverything() {
  FlowRecorder::Options options;
  options.sample_rate = 1;
  return options;
}

FlowRecorder::Sample MakeSample(std::uint32_t in_port, std::uint32_t out_port,
                                std::uint64_t cookie = 7,
                                std::uint32_t bytes = 100) {
  FlowRecorder::Sample s;
  s.in_port = in_port;
  s.out_port = out_port;
  s.rule_cookie = cookie;
  s.priority = 100;
  s.fec = 0xAA00 + cookie;
  s.size_bytes = bytes;
  return s;
}

// ---------------------------------------------------------------------------
// Sampling decision

TEST(FlowRecorderSampling, IsAPureFunctionOfSeedAndSeq) {
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    EXPECT_EQ(FlowRecorder::Sampled(42, seq, 64),
              FlowRecorder::Sampled(42, seq, 64));
  }
}

TEST(FlowRecorderSampling, RateOneSamplesEverything) {
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_TRUE(FlowRecorder::Sampled(7, seq, 1));
    EXPECT_TRUE(FlowRecorder::Sampled(7, seq, 0));  // sanitized to 1
  }
}

TEST(FlowRecorderSampling, HitsRoughlyTheConfiguredRate) {
  constexpr std::uint64_t kPackets = 1 << 16;
  constexpr std::uint32_t kRate = 64;
  std::uint64_t sampled = 0;
  for (std::uint64_t seq = 0; seq < kPackets; ++seq) {
    if (FlowRecorder::Sampled(42, seq, kRate)) ++sampled;
  }
  const double expected = static_cast<double>(kPackets) / kRate;  // 1024
  EXPECT_GT(sampled, expected / 2);
  EXPECT_LT(sampled, expected * 2);
}

TEST(FlowRecorderSampling, DifferentSeedsPickDifferentPackets) {
  bool diverged = false;
  for (std::uint64_t seq = 0; seq < 10000 && !diverged; ++seq) {
    diverged = FlowRecorder::Sampled(1, seq, 64) !=
               FlowRecorder::Sampled(2, seq, 64);
  }
  EXPECT_TRUE(diverged);
}

// ---------------------------------------------------------------------------
// Volume estimation

TEST(FlowRecorder, EstimatesScaleSampledVolumeByRate) {
  FlowRecorder::Options options;
  options.seed = 5;
  options.sample_rate = 4;
  FlowRecorder recorder(options);
  for (int i = 0; i < 4000; ++i) {
    recorder.RecordPacket(MakeSample(1, 2, /*cookie=*/7, /*bytes=*/100));
  }
  recorder.FlushAll();
  const std::vector<FlowRecord> records = recorder.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].est_packets, records[0].sampled_packets * 4);
  EXPECT_EQ(records[0].est_bytes, records[0].sampled_bytes * 4);
  EXPECT_EQ(records[0].sampled_bytes, records[0].sampled_packets * 100);
  EXPECT_EQ(recorder.packets_seen(), 4000u);
  EXPECT_EQ(recorder.packets_sampled(), records[0].sampled_packets);
}

// ---------------------------------------------------------------------------
// Deterministic export

std::string RunFixedStream(std::uint64_t seed) {
  FlowRecorder::Options options;
  options.seed = seed;
  options.sample_rate = 8;
  FlowRecorder recorder(options);
  recorder.SetPortOwner(1, 100);
  recorder.SetPortOwner(2, 200);
  recorder.SetPortOwner(3, 300);
  for (int i = 0; i < 5000; ++i) {
    recorder.RecordPacket(MakeSample(1 + i % 2, 3, /*cookie=*/10 + i % 3,
                                     /*bytes=*/64 + i % 700));
  }
  recorder.FlushAll();
  return recorder.DrainJsonl(/*timestamps=*/false);
}

TEST(FlowRecorder, FixedSeedExportIsByteIdentical) {
  const std::string a = RunFixedStream(42);
  const std::string b = RunFixedStream(42);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FlowRecorder, DifferentSeedsProduceDifferentExports) {
  EXPECT_NE(RunFixedStream(1), RunFixedStream(2));
}

TEST(FlowRecord, ToJsonOmitsTimestampsOnRequest) {
  FlowRecord record;
  record.first_seconds = 1.5;
  record.last_seconds = 2.5;
  record.close_reason = "flush";
  EXPECT_NE(record.ToJson(/*timestamps=*/true).find("first_ts"),
            std::string::npos);
  EXPECT_EQ(record.ToJson(/*timestamps=*/false).find("first_ts"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Participant resolution

TEST(FlowRecorder, ResolvesPortOwnersAtExportTime) {
  FlowRecorder recorder(SampleEverything());
  recorder.RecordPacket(MakeSample(1, 2));
  // Owners declared AFTER the packet: export-time resolution still works.
  recorder.SetPortOwner(1, 65001);
  recorder.SetPortOwner(2, 65002);
  recorder.FlushAll();
  const auto records = recorder.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].src_as, 65001u);
  EXPECT_EQ(records[0].dst_as, 65002u);
}

TEST(FlowRecorder, UnknownPortsExportAsZero) {
  FlowRecorder recorder(SampleEverything());
  recorder.RecordPacket(MakeSample(9, 10));
  recorder.FlushAll();
  const auto records = recorder.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].src_as, 0u);
  EXPECT_EQ(records[0].dst_as, 0u);
}

// ---------------------------------------------------------------------------
// Cache bounds

TEST(FlowRecorder, EvictsTheOldestFlowDeterministically) {
  FlowRecorder::Options options;
  options.sample_rate = 1;
  options.cache_capacity = 2;
  FlowRecorder recorder(options);
  recorder.RecordPacket(MakeSample(1, 2, /*cookie=*/1));  // seq 0
  recorder.RecordPacket(MakeSample(3, 4, /*cookie=*/2));  // seq 1
  recorder.RecordPacket(MakeSample(5, 6, /*cookie=*/3));  // seq 2 -> evict
  EXPECT_EQ(recorder.cache_evictions(), 1u);
  EXPECT_EQ(recorder.live_flows(), 2u);
  const auto records = recorder.Drain();
  ASSERT_EQ(records.size(), 1u);
  // The victim is the flow whose last sample is oldest: cookie 1, seq 0.
  EXPECT_EQ(records[0].rule_cookie, 1u);
  EXPECT_STREQ(records[0].close_reason, "evict");
}

TEST(FlowRecorder, TouchingAFlowSavesItFromEviction) {
  FlowRecorder::Options options;
  options.sample_rate = 1;
  options.cache_capacity = 2;
  FlowRecorder recorder(options);
  recorder.RecordPacket(MakeSample(1, 2, /*cookie=*/1));  // seq 0
  recorder.RecordPacket(MakeSample(3, 4, /*cookie=*/2));  // seq 1
  recorder.RecordPacket(MakeSample(1, 2, /*cookie=*/1));  // seq 2: refresh
  recorder.RecordPacket(MakeSample(5, 6, /*cookie=*/3));  // seq 3 -> evict
  const auto records = recorder.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].rule_cookie, 2u);  // cookie 1 was refreshed
}

TEST(FlowRecorder, FlushExportsInDeterministicKeyOrder) {
  FlowRecorder recorder(SampleEverything());
  recorder.RecordPacket(MakeSample(9, 1, /*cookie=*/3));
  recorder.RecordPacket(MakeSample(2, 1, /*cookie=*/1));
  recorder.RecordPacket(MakeSample(5, 1, /*cookie=*/2));
  recorder.FlushAll();
  const auto records = recorder.Drain();
  ASSERT_EQ(records.size(), 3u);
  // Key order, not insertion order: sorted by in_port first.
  EXPECT_EQ(records[0].in_port, 2u);
  EXPECT_EQ(records[1].in_port, 5u);
  EXPECT_EQ(records[2].in_port, 9u);
  for (const auto& record : records) {
    EXPECT_STREQ(record.close_reason, "flush");
  }
  EXPECT_EQ(recorder.live_flows(), 0u);
  EXPECT_EQ(recorder.flows_exported(), 3u);
}

// ---------------------------------------------------------------------------
// Timeouts (driven by a fake clock)

TEST(FlowRecorder, IdleFlowsCloseAndRestartOnTheNextSample) {
  FlowRecorder::Options options;
  options.sample_rate = 1;
  options.idle_timeout_seconds = 15.0;
  options.active_timeout_seconds = 0.0;  // disabled
  FlowRecorder recorder(options);
  double now = 0.0;
  recorder.SetClockForTest([&now] { return now; });

  recorder.RecordPacket(MakeSample(1, 2));
  now = 10.0;
  recorder.RecordPacket(MakeSample(1, 2));  // within idle window
  EXPECT_EQ(recorder.flows_exported(), 0u);

  now = 30.0;  // 20s since last sample > 15s idle
  recorder.RecordPacket(MakeSample(1, 2));
  EXPECT_EQ(recorder.flows_exported(), 1u);
  EXPECT_EQ(recorder.live_flows(), 1u);  // restarted
  const auto records = recorder.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].close_reason, "idle");
  EXPECT_EQ(records[0].sampled_packets, 2u);
}

TEST(FlowRecorder, LongLivedFlowsHitTheActiveTimeout) {
  FlowRecorder::Options options;
  options.sample_rate = 1;
  options.idle_timeout_seconds = 1e9;  // effectively disabled
  options.active_timeout_seconds = 60.0;
  FlowRecorder recorder(options);
  double now = 0.0;
  recorder.SetClockForTest([&now] { return now; });

  recorder.RecordPacket(MakeSample(1, 2));
  now = 30.0;
  recorder.RecordPacket(MakeSample(1, 2));
  now = 70.0;  // 70s since first sample > 60s active
  recorder.RecordPacket(MakeSample(1, 2));
  const auto records = recorder.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].close_reason, "active");
  EXPECT_EQ(records[0].sampled_packets, 2u);
  EXPECT_EQ(recorder.live_flows(), 1u);  // the third sample started fresh
}

}  // namespace
}  // namespace sdx::obs
