// ConvergenceTracker (DESIGN.md §12): ingest-stamp sync from the journal,
// end-to-end / queue-wait accounting against an injected clock, coalesced
// attribution to the absorbing batch, chain truncation under journal ring
// overwrite (never a fabricated e2e), the pending-map bound, and the
// runtime integration — StampIngress provenance at enqueue, RecordBatch
// on flush, convergence.* spliced into SnapshotMetrics.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "obs/convergence.h"
#include "obs/journal.h"
#include "sdx/runtime.h"

namespace sdx::obs {
namespace {

class ConvergenceTrackerTest : public ::testing::Test {
 protected:
  // A journal on a deterministic, hand-advanced clock.
  void MakeJournal(std::size_t capacity) {
    journal_ = std::make_unique<Journal>(capacity);
    journal_->clock().SetClockForTest([this] { return now_; });
  }

  // One ingest stamp: enqueue event for a fresh provenance id at `now_`.
  UpdateId Enqueue(std::uint64_t sender_as) {
    const UpdateId id = journal_->NextUpdateId();
    journal_->Record(JournalEventType::kUpdateEnqueued, id, sender_as, 1, 0,
                     "10.0.0.0/8");
    return id;
  }

  double now_ = 0.0;
  std::unique_ptr<Journal> journal_;
};

TEST_F(ConvergenceTrackerTest, MeasuresEndToEndAndQueueWait) {
  MakeJournal(Journal::kDefaultCapacity);
  ConvergenceTracker tracker;
  tracker.AttachJournal(journal_.get());

  now_ = 1.0;
  const UpdateId a = Enqueue(100);
  now_ = 2.0;
  const UpdateId b = Enqueue(200);

  ConvergenceBatch batch;
  batch.end_seconds = 10.0;
  batch.batch_seconds = 4.0;  // batch start = 6.0
  batch.decision_seconds = 1.0;
  batch.compile_seconds = 2.0;
  batch.flush_seconds = 0.5;
  batch.applied = {{a, 100}, {b, 200}};
  tracker.RecordBatch(batch);

  EXPECT_EQ(tracker.tracked(), 2u);
  EXPECT_EQ(tracker.chain_truncated(), 0u);

  const ConvergenceStats stats = tracker.Snapshot();
  EXPECT_EQ(stats.e2e.count, 2u);
  // e2e: 10-1=9 and 10-2=8; queue_wait: 6-1=5 and 6-2=4.
  EXPECT_DOUBLE_EQ(stats.e2e.sum, 17.0);
  EXPECT_DOUBLE_EQ(stats.queue_wait.sum, 9.0);
  EXPECT_DOUBLE_EQ(stats.e2e.max, 9.0);
  EXPECT_DOUBLE_EQ(stats.queue_wait.max, 5.0);
  // Batch-local segments observed once per applied update.
  EXPECT_EQ(stats.decision.count, 2u);
  EXPECT_DOUBLE_EQ(stats.decision.sum, 2.0);
  EXPECT_DOUBLE_EQ(stats.compile.sum, 4.0);
  EXPECT_DOUBLE_EQ(stats.flush.sum, 1.0);
  EXPECT_EQ(stats.pending, 0u);

  // Offender table: AS 100 owns the slower update.
  ASSERT_EQ(stats.worst_by_as.size(), 2u);
  EXPECT_EQ(stats.worst_by_as[0].as, 100u);
  EXPECT_DOUBLE_EQ(stats.worst_by_as[0].worst_seconds, 9.0);
  EXPECT_EQ(stats.worst_by_as[0].updates, 1u);
}

TEST_F(ConvergenceTrackerTest, CoalescedLosersAttributedToAbsorbingBatch) {
  MakeJournal(Journal::kDefaultCapacity);
  ConvergenceTracker tracker;
  tracker.AttachJournal(journal_.get());

  now_ = 1.0;
  const UpdateId loser = Enqueue(100);
  now_ = 2.0;
  const UpdateId winner = Enqueue(100);

  ConvergenceBatch batch;
  batch.end_seconds = 5.0;
  batch.batch_seconds = 1.0;
  batch.applied = {{winner, 100}};
  batch.coalesced = {loser};
  tracker.RecordBatch(batch);

  EXPECT_EQ(tracker.tracked(), 1u);
  EXPECT_EQ(tracker.coalesced_attributed(), 1u);
  EXPECT_EQ(tracker.chain_truncated(), 0u);
  const ConvergenceStats stats = tracker.Snapshot();
  // Both converge at the absorber's flush: e2e 4.0 (loser) + 3.0 (winner).
  EXPECT_EQ(stats.e2e.count, 2u);
  EXPECT_DOUBLE_EQ(stats.e2e.sum, 7.0);
  // Segments belong to applied updates only.
  EXPECT_EQ(stats.decision.count, 1u);
}

TEST_F(ConvergenceTrackerTest, RingOverwriteTruncatesChainsNeverFabricates) {
  // A 4-slot ring: stamps for the first updates are long gone by the time
  // the tracker syncs. They must land in chain_truncated with NO e2e
  // observation — a fabricated latency would poison the percentiles.
  MakeJournal(4);
  ConvergenceTracker tracker;
  tracker.AttachJournal(journal_.get());

  std::vector<UpdateId> ids;
  for (int i = 0; i < 12; ++i) {
    now_ = static_cast<double>(i);
    ids.push_back(Enqueue(100 + static_cast<std::uint64_t>(i)));
  }

  ConvergenceBatch batch;
  batch.end_seconds = 100.0;
  batch.batch_seconds = 1.0;
  for (const UpdateId id : ids) batch.applied.emplace_back(id, 0u);
  tracker.RecordBatch(batch);

  // Only the 4 stamps still in the ring survive.
  EXPECT_EQ(tracker.tracked(), 4u);
  EXPECT_EQ(tracker.chain_truncated(), 8u);
  const ConvergenceStats stats = tracker.Snapshot();
  EXPECT_EQ(stats.e2e.count, 4u);
  // The survivors are the LAST four enqueues (t=8..11): e2e sums to
  // (100-8)+(100-9)+(100-10)+(100-11).
  EXPECT_DOUBLE_EQ(stats.e2e.sum, 362.0);
  // Batch-local segments still cover every applied update.
  EXPECT_EQ(stats.decision.count, 12u);
}

TEST_F(ConvergenceTrackerTest, DetachedJournalCountsEverythingTruncated) {
  ConvergenceTracker tracker;  // never attached
  ConvergenceBatch batch;
  batch.end_seconds = 1.0;
  batch.batch_seconds = 0.5;
  batch.applied = {{7, 100}};
  batch.coalesced = {8};
  tracker.RecordBatch(batch);
  EXPECT_EQ(tracker.tracked(), 0u);
  EXPECT_EQ(tracker.coalesced_attributed(), 0u);
  EXPECT_EQ(tracker.chain_truncated(), 2u);
  EXPECT_EQ(tracker.Snapshot().e2e.count, 0u);
}

TEST_F(ConvergenceTrackerTest, PendingMapIsBounded) {
  MakeJournal(Journal::kDefaultCapacity);
  ConvergenceTracker tracker(/*max_pending=*/2);
  tracker.AttachJournal(journal_.get());

  const UpdateId a = Enqueue(1);
  const UpdateId b = Enqueue(2);
  const UpdateId c = Enqueue(3);  // over the bound: dropped on sync

  ConvergenceBatch batch;
  batch.end_seconds = 1.0;
  batch.batch_seconds = 0.5;
  batch.applied = {{a, 1}, {b, 2}, {c, 3}};
  tracker.RecordBatch(batch);

  EXPECT_EQ(tracker.pending_overflow(), 1u);
  EXPECT_EQ(tracker.tracked(), 2u);
  EXPECT_EQ(tracker.chain_truncated(), 1u);
}

TEST_F(ConvergenceTrackerTest, FillMetricsAndAppendSeriesExportNames) {
  MakeJournal(Journal::kDefaultCapacity);
  ConvergenceTracker tracker;
  tracker.AttachJournal(journal_.get());
  now_ = 1.0;
  const UpdateId id = Enqueue(42);
  ConvergenceBatch batch;
  batch.end_seconds = 2.0;
  batch.batch_seconds = 0.5;
  batch.applied = {{id, 42}};
  tracker.RecordBatch(batch);

  MetricsSnapshot snapshot;
  tracker.FillMetrics(&snapshot);
  EXPECT_EQ(snapshot.histograms.count("convergence.e2e.seconds"), 1u);
  EXPECT_EQ(snapshot.histograms.count("convergence.queue_wait.seconds"), 1u);
  EXPECT_EQ(snapshot.counters.at("convergence.tracked"), 1u);
  EXPECT_EQ(snapshot.counters.at("convergence.chain_truncated"), 0u);

  std::map<std::string, double> values;
  tracker.AppendSeries(&values);
  EXPECT_EQ(values.count("convergence.e2e.p99"), 1u);
  EXPECT_EQ(values.count("convergence.queue_wait.p50"), 1u);
  EXPECT_DOUBLE_EQ(values.at("convergence.tracked"), 1.0);
  EXPECT_DOUBLE_EQ(values.at("convergence.as42.updates"), 1.0);
  EXPECT_DOUBLE_EQ(values.at("convergence.as42.worst_seconds"), 1.0);
}

// ---------------------------------------------------------------------------
// Runtime integration, parameterized over the decision shard count: the
// e2e cases must hold whether the rib_update stage ran sequentially
// (shards=1) or fanned out across per-shard decision workers (shards=4,
// DESIGN.md §13) — sharding may add decision.shard<i> sub-spans but must
// not change what converges or how it is attributed.

class ConvergenceRuntimeTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr core::AsNumber kA = 100;
  static constexpr core::AsNumber kB = 200;

  void SetUp() override {
    runtime_.AddParticipant(kA, 1);
    runtime_.AddParticipant(kB, 2);
    for (int i = 1; i <= 8; ++i) {
      runtime_.AnnouncePrefix(kB, P(i), {kB, 900});
    }
    // Pin the pool so shards=4 fans out regardless of host core count.
    runtime_.SetCompileOptions(
        {.parallel = true, .incremental = true, .threads = 4});
    runtime_.SetDecisionOptions(
        {.parallel = GetParam() > 1, .shards = GetParam()});
    runtime_.FullCompile();
  }

  static net::IPv4Prefix P(int i) {
    return net::IPv4Prefix(
        net::IPv4Address(10, static_cast<uint8_t>(i), 0, 0), 16);
  }

  bgp::BgpUpdate Announce(core::AsNumber from, const net::IPv4Prefix& prefix,
                          std::uint32_t local_pref) {
    bgp::Announcement a;
    a.from_as = from;
    a.route.prefix = prefix;
    a.route.next_hop = runtime_.RouterIp(from);
    a.route.as_path = {from};
    a.route.local_pref = local_pref;
    return bgp::BgpUpdate{a};
  }

  core::SdxRuntime runtime_;
};

TEST_P(ConvergenceRuntimeTest, EnqueueFlushProducesEndToEndMeasurements) {
  runtime_.EnableConvergenceTracking();
  for (int i = 1; i <= 4; ++i) {
    runtime_.EnqueueUpdate(Announce(kB, P(i), 1000 + i));
  }
  // Two flaps on the same (peer, prefix): the loser coalesces away but
  // still converges with the absorbing batch.
  runtime_.EnqueueUpdate(Announce(kB, P(1), 2000));
  runtime_.Flush();

  EXPECT_EQ(runtime_.convergence()->tracked(), 4u);
  EXPECT_EQ(runtime_.convergence()->coalesced_attributed(), 1u);
  EXPECT_EQ(runtime_.convergence()->chain_truncated(), 0u);
  const ConvergenceStats stats = runtime_.convergence()->Snapshot();
  EXPECT_EQ(stats.e2e.count, 5u);
  EXPECT_GE(stats.e2e.max, 0.0);
  EXPECT_EQ(stats.decision.count, 4u);

  // Decision-segment attribution (DESIGN.md §13): the per-shard worker
  // seconds of the last batch sum to the tracker's shard-time total, and
  // any decision.shard<i> sub-spans live under the rib_update segment the
  // decision histogram measures — they never double-count.
  const core::BatchStats& batch = runtime_.last_batch();
  EXPECT_EQ(batch.decision_parallel, GetParam() > 1);
  double shard_sum = 0.0;
  for (const double seconds : batch.decision_shard_seconds) {
    shard_sum += seconds;
  }
  EXPECT_DOUBLE_EQ(stats.decision_shard_seconds, shard_sum);
  EXPECT_NEAR(stats.decision_wall_seconds, stats.decision.sum / 4.0, 1e-9)
      << "wall total must stay the batch rib_update segment, observed once "
         "per applied update in the decision histogram";
  if (batch.decision_parallel) {
    std::size_t shard_spans = 0;
    for (const SpanRecord& span : batch.stages) {
      if (span.name.rfind("decision.shard", 0) == 0) ++shard_spans;
    }
    EXPECT_EQ(shard_spans, batch.decision_shard_seconds.size());
  }

  // The tracker's histograms + counters ride along in SnapshotMetrics.
  const MetricsSnapshot snapshot = runtime_.SnapshotMetrics();
  EXPECT_EQ(snapshot.histograms.count("convergence.e2e.seconds"), 1u);
  EXPECT_EQ(snapshot.counters.at("convergence.tracked"), 4u);
  EXPECT_EQ(snapshot.gauges.count("convergence.decision.wall_seconds_total"),
            1u);
  EXPECT_EQ(snapshot.gauges.count("convergence.decision.shard_seconds_total"),
            1u);
}

TEST_P(ConvergenceRuntimeTest, ApplyBgpUpdateFallsBackToBeginStamp) {
  // The batch-of-one path has no separate enqueue hop: kBgpUpdateBegin is
  // the ingest stamp, so queue_wait collapses to ~0 but e2e still lands.
  runtime_.EnableConvergenceTracking();
  runtime_.ApplyBgpUpdate(Announce(kB, P(1), 3000));
  EXPECT_EQ(runtime_.convergence()->tracked(), 1u);
  EXPECT_EQ(runtime_.convergence()->chain_truncated(), 0u);
}

TEST_P(ConvergenceRuntimeTest, JournalRingOverflowCountsTruncated) {
  // Satellite regression test: a journal ring far smaller than the batch.
  // By the time the batch flushes, the kUpdateEnqueued (and most
  // kBgpUpdateBegin) events of early updates were evicted — those updates
  // must land in convergence.chain_truncated, not be mis-attributed to a
  // surviving stamp.
  runtime_.EnableJournal(/*capacity=*/8);
  runtime_.EnableConvergenceTracking();
  const int kUpdates = 32;
  for (int i = 0; i < kUpdates; ++i) {
    runtime_.EnqueueUpdate(
        Announce(kB, P(1 + (i % 8)), 5000 + static_cast<std::uint32_t>(i)));
  }
  runtime_.Flush();

  const std::uint64_t accounted = runtime_.convergence()->tracked() +
                                  runtime_.convergence()->coalesced_attributed() +
                                  runtime_.convergence()->chain_truncated();
  EXPECT_EQ(accounted, static_cast<std::uint64_t>(kUpdates));
  // The ring holds 8 events against 32 updates' worth of chains: most
  // ingest stamps cannot have survived.
  EXPECT_GE(runtime_.convergence()->chain_truncated(),
            static_cast<std::uint64_t>(kUpdates - 8));
  // Whatever was measured came from a real surviving stamp: e2e
  // observations exactly match the non-truncated count.
  const ConvergenceStats stats = runtime_.convergence()->Snapshot();
  EXPECT_EQ(stats.e2e.count,
            runtime_.convergence()->tracked() +
                runtime_.convergence()->coalesced_attributed());
  EXPECT_EQ(stats.chain_truncated, runtime_.convergence()->chain_truncated());

  // Disabling the journal mid-flight detaches the tracker: everything
  // afterwards is truncated, nothing crashes.
  runtime_.DisableJournal();
  runtime_.EnqueueUpdate(Announce(kB, P(1), 9000));
  runtime_.Flush();
  EXPECT_GT(runtime_.convergence()->chain_truncated(),
            static_cast<std::uint64_t>(kUpdates - 8));
}

INSTANTIATE_TEST_SUITE_P(DecisionShards, ConvergenceRuntimeTest,
                         ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace sdx::obs
