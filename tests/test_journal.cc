// The control-plane flight recorder: ring/overwrite semantics, cursors,
// JSONL round trips, and the end-to-end provenance guarantee — one BGP
// announcement's update id is recoverable from session ingress through the
// route-server decision, group/VNH construction, and every flow-mod it
// caused, all the way to the re-advertisements it triggered.
#include <gtest/gtest.h>

#include <set>

#include "obs/journal.h"
#include "sdx/multi_switch.h"
#include "sdx/session_frontend.h"

namespace sdx::core {
namespace {

using obs::Journal;
using obs::JournalEvent;
using obs::JournalEventType;
using obs::kNoUpdateId;

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

// --- Ring semantics -------------------------------------------------------

TEST(Journal, RecordsEventsInOrder) {
  Journal journal(8);
  journal.Record(JournalEventType::kCompileBegin, kNoUpdateId);
  journal.Record(JournalEventType::kCompileEnd, kNoUpdateId, 3, 42, 17);
  auto events = journal.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, JournalEventType::kCompileBegin);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].arg0, 3u);
  EXPECT_EQ(events[1].arg1, 42u);
  EXPECT_EQ(events[1].arg2, 17u);
  EXPECT_GE(events[1].seconds, events[0].seconds);
}

TEST(Journal, RingOverwritesOldestButSeqsNeverReused) {
  Journal journal(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    journal.Record(JournalEventType::kRsDecision, i + 1, i);
  }
  EXPECT_EQ(journal.capacity(), 4u);
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.total_recorded(), 6u);
  EXPECT_EQ(journal.overwritten(), 2u);
  EXPECT_EQ(journal.oldest_seq(), 2u);
  EXPECT_EQ(journal.next_seq(), 6u);
  auto events = journal.Events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 2 + i);
    EXPECT_EQ(events[i].arg0, 2 + i);  // payload followed the overwrite
  }
}

TEST(Journal, TailSinceResumesAndDetectsGaps) {
  Journal journal(4);
  journal.Record(JournalEventType::kRsDecision, 1);
  journal.Record(JournalEventType::kRsDecision, 2);
  auto first = journal.TailSince(0);
  ASSERT_EQ(first.size(), 2u);
  const std::uint64_t cursor = first.back().seq + 1;

  // Overwrite the whole ring: the cursor's window is gone.
  for (int i = 0; i < 5; ++i) {
    journal.Record(JournalEventType::kVnhBind, 3);
  }
  auto tail = journal.TailSince(cursor);
  ASSERT_EQ(tail.size(), 4u);
  // The gap is visible: the first returned seq is past the cursor.
  EXPECT_GT(tail.front().seq, cursor);
  EXPECT_EQ(tail.back().seq, journal.next_seq() - 1);

  // A cursor at next_seq() returns nothing.
  EXPECT_TRUE(journal.TailSince(journal.next_seq()).empty());
}

TEST(Journal, ClearKeepsSeqNumberingAndUpdateIds) {
  Journal journal(8);
  const obs::UpdateId id = journal.NextUpdateId();
  journal.Record(JournalEventType::kRsDecision, id);
  journal.Clear();
  EXPECT_TRUE(journal.empty());
  EXPECT_EQ(journal.total_recorded(), 1u);
  EXPECT_EQ(journal.oldest_seq(), journal.next_seq());

  journal.Record(JournalEventType::kRsDecision, journal.NextUpdateId());
  auto events = journal.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);        // numbering continued
  EXPECT_EQ(events[0].update_id, 2u);  // ids continued
}

TEST(Journal, UpdateIdsStartAtOneAndAreMonotonic) {
  Journal journal(4);
  EXPECT_EQ(journal.NextUpdateId(), 1u);
  EXPECT_EQ(journal.NextUpdateId(), 2u);
  EXPECT_EQ(journal.current_update_id(), kNoUpdateId);
}

TEST(Journal, UpdateIdScopeSetsAndRestores) {
  Journal journal(4);
  journal.set_current_update_id(7);
  {
    obs::UpdateIdScope scope(&journal, 9);
    EXPECT_EQ(journal.current_update_id(), 9u);
    {
      obs::UpdateIdScope inner(&journal, 11);
      EXPECT_EQ(journal.current_update_id(), 11u);
    }
    EXPECT_EQ(journal.current_update_id(), 9u);
  }
  EXPECT_EQ(journal.current_update_id(), 7u);
  // Null journal: the scope is a no-op, not a crash.
  obs::UpdateIdScope null_scope(nullptr, 3);
  obs::JournalRecord(nullptr, JournalEventType::kRsDecision, 3);
}

// --- JSONL ----------------------------------------------------------------

TEST(Journal, TypeNamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(JournalEventType::kFlowRulesRetire);
       ++i) {
    const auto type = static_cast<JournalEventType>(i);
    JournalEventType back;
    ASSERT_TRUE(
        obs::JournalEventTypeFromName(obs::JournalEventTypeName(type), &back));
    EXPECT_EQ(back, type);
  }
  JournalEventType out;
  EXPECT_FALSE(obs::JournalEventTypeFromName("not_a_type", &out));
}

TEST(Journal, JsonlRoundTripsIncludingEscapes) {
  Journal journal(8);
  journal.Record(JournalEventType::kFlowRuleInstall, 5, 1, 1000, 2,
                 "match \"dst\\port\"\n10.0.0.0/8");
  journal.Record(JournalEventType::kCompileEnd, kNoUpdateId, 7, 8, 9);
  const std::string jsonl = journal.ToJsonl();
  auto parsed = Journal::FromJsonl(jsonl);
  auto original = journal.Events();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].seq, original[i].seq);
    EXPECT_EQ(parsed[i].update_id, original[i].update_id);
    EXPECT_EQ(parsed[i].type, original[i].type);
    EXPECT_EQ(parsed[i].arg0, original[i].arg0);
    EXPECT_EQ(parsed[i].arg1, original[i].arg1);
    EXPECT_EQ(parsed[i].arg2, original[i].arg2);
    EXPECT_EQ(parsed[i].detail, original[i].detail);
    EXPECT_NEAR(parsed[i].seconds, original[i].seconds, 1e-6);
  }
}

TEST(Journal, FromJsonlRejectsMalformedLines) {
  EXPECT_THROW(Journal::FromJsonl("{\"seq\": }"), std::runtime_error);
  EXPECT_THROW(
      Journal::FromJsonl(
          "{\"seq\":0,\"ts\":0,\"update\":0,\"type\":\"bogus_event\","
          "\"args\":[0,0,0],\"detail\":\"\"}"),
      std::runtime_error);
  EXPECT_TRUE(Journal::FromJsonl("\n\n").empty());
}

// --- End-to-end provenance ------------------------------------------------

class JournalProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_.AddParticipant(100, 1);
    runtime_.AddParticipant(200, 1);
    runtime_.AddParticipant(300, 1);
    OutboundClause web;
    web.match = policy::Predicate::DstPort(80);
    web.to = 200;
    runtime_.SetOutboundPolicy(100, {web});
    runtime_.FullCompile();

    frontend_ = std::make_unique<SessionFrontend>(runtime_);
    for (AsNumber as : {100u, 200u, 300u}) frontend_->Connect(as);
  }

  bgp::BgpUpdate Announce(AsNumber from, const char* prefix) {
    bgp::Announcement a;
    a.from_as = from;
    a.route.prefix = Pfx(prefix);
    a.route.as_path = {from};
    a.route.next_hop = runtime_.RouterIp(from);
    return bgp::BgpUpdate{a};
  }

  SdxRuntime runtime_;
  std::unique_ptr<SessionFrontend> frontend_;
};

TEST_F(JournalProvenanceTest, OneAnnouncementTraceableEndToEnd) {
  obs::Journal* journal = runtime_.journal();
  ASSERT_NE(journal, nullptr);
  const std::uint64_t before = journal->next_seq();

  frontend_->FindSession(200)->SendToPeer(Announce(200, "10.0.0.0/8"));
  ASSERT_EQ(frontend_->Pump(), 1u);

  // The announcement got a fresh nonzero id at session ingress.
  auto events = journal->TailSince(before);
  ASSERT_FALSE(events.empty());
  ASSERT_EQ(events.front().type, JournalEventType::kBgpSessionRx);
  const obs::UpdateId id = events.front().update_id;
  ASSERT_NE(id, kNoUpdateId);

  // Every pipeline stage shows up carrying that same id.
  std::set<JournalEventType> stages;
  for (const JournalEvent& e : events) {
    if (e.update_id == id) stages.insert(e.type);
  }
  EXPECT_TRUE(stages.count(JournalEventType::kBgpSessionRx));
  EXPECT_TRUE(stages.count(JournalEventType::kBgpUpdateBegin));
  EXPECT_TRUE(stages.count(JournalEventType::kRsDecision));
  EXPECT_TRUE(stages.count(JournalEventType::kFecGroupCreate));
  EXPECT_TRUE(stages.count(JournalEventType::kVnhBind));
  EXPECT_TRUE(stages.count(JournalEventType::kFlowRuleInstall));
  EXPECT_TRUE(stages.count(JournalEventType::kBgpUpdateEnd));
  EXPECT_TRUE(stages.count(JournalEventType::kBgpSessionTx));

  // No other update id appears: this pump processed exactly one update.
  for (const JournalEvent& e : events) {
    EXPECT_TRUE(e.update_id == id || e.update_id == kNoUpdateId)
        << "unexpected id " << e.update_id << " on "
        << obs::JournalEventTypeName(e.type);
  }

  // A second announcement gets the next id — ids never repeat.
  const std::uint64_t mark = journal->next_seq();
  frontend_->FindSession(300)->SendToPeer(Announce(300, "20.0.0.0/8"));
  frontend_->Pump();
  auto next = journal->TailSince(mark);
  ASSERT_FALSE(next.empty());
  EXPECT_EQ(next.front().type, JournalEventType::kBgpSessionRx);
  EXPECT_GT(next.front().update_id, id);
}

TEST_F(JournalProvenanceTest, FullCompileJournaledAsAmbientAggregates) {
  obs::Journal* journal = runtime_.journal();
  const std::uint64_t before = journal->next_seq();
  runtime_.FullCompile();
  auto events = journal->TailSince(before);
  bool saw_begin = false, saw_end = false, saw_bulk = false;
  for (const JournalEvent& e : events) {
    EXPECT_EQ(e.update_id, kNoUpdateId)
        << obs::JournalEventTypeName(e.type);
    // A generation swap journals aggregates, never per-rule events.
    EXPECT_NE(e.type, JournalEventType::kFlowRuleInstall);
    EXPECT_NE(e.type, JournalEventType::kFlowRuleDelete);
    saw_begin |= e.type == JournalEventType::kCompileBegin;
    saw_end |= e.type == JournalEventType::kCompileEnd;
    saw_bulk |= e.type == JournalEventType::kFlowRulesBulk;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_bulk);
}

TEST_F(JournalProvenanceTest, DisableJournalTurnsRecordingOff) {
  runtime_.DisableJournal();
  EXPECT_EQ(runtime_.journal(), nullptr);
  // The pipeline still works; nothing records, nothing crashes. (Sessions
  // connected before the disable keep their old pointer by design, so use
  // the direct-injection entry point here.)
  auto stats = runtime_.ApplyBgpUpdate(Announce(300, "30.0.0.0/8"));
  EXPECT_TRUE(stats.best_route_changed);

  // Re-enabling swaps in a fresh ring.
  runtime_.EnableJournal(16);
  ASSERT_NE(runtime_.journal(), nullptr);
  EXPECT_EQ(runtime_.journal()->capacity(), 16u);
  EXPECT_TRUE(runtime_.journal()->empty());
}

TEST_F(JournalProvenanceTest, ShrunkRingStillAnswersRecentPast) {
  runtime_.EnableJournal(8);  // rewires RS + flow table to the tiny ring
  obs::Journal* journal = runtime_.journal();
  runtime_.ApplyBgpUpdate(Announce(200, "10.0.0.0/8"));
  runtime_.ApplyBgpUpdate(Announce(300, "20.0.0.0/8"));
  EXPECT_LE(journal->size(), 8u);
  EXPECT_GT(journal->total_recorded(), journal->size());
  // The most recent events survive and are contiguous up to next_seq().
  auto events = journal->Events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().seq, journal->next_seq() - 1);
}

TEST(MultiSwitchJournal, FlowModsAttributedPerSwitch) {
  SdxRuntime runtime;
  runtime.AddParticipant(100, 1);
  runtime.AddParticipant(200, 1);
  runtime.AddParticipant(300, 1);
  OutboundClause web;
  web.match = policy::Predicate::DstPort(80);
  web.to = 200;
  runtime.SetOutboundPolicy(100, {web});
  runtime.AnnouncePrefix(200, Pfx("10.0.0.0/8"));
  runtime.FullCompile();

  MultiSwitchDeployment deployment(runtime.topology(), 2);
  deployment.SetSinks(runtime.sinks());
  const std::uint64_t before = runtime.journal()->next_seq();
  deployment.Install(runtime.data_plane().table().rules());

  std::set<std::uint64_t> switches;
  for (const JournalEvent& e : runtime.journal()->TailSince(before)) {
    if (e.type == JournalEventType::kFlowRuleInstall ||
        e.type == JournalEventType::kFlowRulesBulk) {
      switches.insert(e.arg0);
    }
  }
  // Core (0) and both edges (1, 2) all produced flow-mod events.
  EXPECT_TRUE(switches.count(0));
  EXPECT_TRUE(switches.count(1));
  EXPECT_TRUE(switches.count(2));
}

}  // namespace
}  // namespace sdx::core
