// Unit tests for the observability primitives: histogram bucketing and
// percentile extraction, span nesting, registry handle stability, drop
// counters, and the snapshot JSON/text exporters (including a grammar-level
// validation of ToJson()'s output).
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/drop_reason.h"
#include "obs/metrics.h"
#include "obs/sharded.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace sdx::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(Histogram, BucketsObservationsByUpperBound) {
  Histogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 finite + overflow

  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive)
  h.Observe(5.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(1e6);    // overflow

  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 observations in (10, 20]: percentiles land inside that bucket.
  for (int i = 1; i <= 10; ++i) h.Observe(10.0 + i);
  const double p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  // p0/p100 clamp to the observed extremes, not the bucket edges.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 11.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 20.0);
}

TEST(Histogram, PercentilePicksTheRightBucket) {
  Histogram h({1.0, 2.0, 3.0, 4.0});
  // 90 observations <= 1, 10 in (3, 4]: p50 is in the first bucket, p99 in
  // the last.
  for (int i = 0; i < 90; ++i) h.Observe(0.5);
  for (int i = 0; i < 10; ++i) h.Observe(3.5);
  EXPECT_LE(h.Percentile(0.50), 1.0);
  EXPECT_GT(h.Percentile(0.99), 3.0);
}

TEST(Histogram, PercentileExtremesWithSingleObservation) {
  Histogram h({1.0, 10.0});
  h.Observe(3.0);
  // One observation: every quantile is that observation.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 3.0);
}

TEST(Histogram, PercentileExtremesClampToObservedRange) {
  Histogram h({10.0, 20.0});
  h.Observe(2.0);
  h.Observe(15.0);
  // q=0 and q=1 never interpolate past what was actually seen.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 15.0);
  // Overflow-bucket observations clamp to the max, not to infinity.
  h.Observe(1e9);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1e9);
}

TEST(Histogram, DefaultLatencyBucketsAreStrictlyIncreasing) {
  const auto bounds = Histogram::LatencyBuckets();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.front(), 1e-6);  // covers microsecond compiles
  EXPECT_GE(bounds.back(), 60.0);   // covers pathological minute-long ones
}

// ---------------------------------------------------------------------------
// Tracer / TraceSpan

TEST(Tracer, RecordsNestedSpansInPreOrder) {
  Tracer tracer;
  {
    TraceSpan root(&tracer, "root");
    {
      TraceSpan a(&tracer, "a");
      TraceSpan a1(&tracer, "a1");
    }
    TraceSpan b(&tracer, "b");
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].parent, SpanRecord::kNoParent);
  EXPECT_EQ(spans[1].name, "a");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "a1");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[3].name, "b");
  EXPECT_EQ(spans[3].depth, 1);
  EXPECT_EQ(spans[3].parent, 0u);
  // Parent spans cover their children.
  EXPECT_GE(spans[0].seconds, spans[1].seconds);
  EXPECT_GE(spans[1].seconds, spans[2].seconds);
}

TEST(Tracer, SecondsForAndClear) {
  Tracer tracer;
  const std::size_t idx = tracer.BeginSpan("work");
  tracer.EndSpan(idx, 1.5);
  EXPECT_DOUBLE_EQ(tracer.SecondsFor("work"), 1.5);
  EXPECT_DOUBLE_EQ(tracer.SecondsFor("absent"), 0.0);
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Tracer, EndSpanOutOfOrderPopsDownToTheClosedSpan) {
  Tracer tracer;
  const std::size_t root = tracer.BeginSpan("root");
  const std::size_t a = tracer.BeginSpan("a");
  const std::size_t a1 = tracer.BeginSpan("a1");
  // Close the middle span without closing its child first: the stack pops
  // down to `a`, implicitly abandoning `a1` (which keeps its 0 duration).
  tracer.EndSpan(a, 2.0);
  // The next span nests under root, not under the abandoned subtree.
  const std::size_t b = tracer.BeginSpan("b");
  tracer.EndSpan(b, 1.0);
  tracer.EndSpan(root, 5.0);

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_DOUBLE_EQ(spans[a].seconds, 2.0);
  EXPECT_DOUBLE_EQ(spans[a1].seconds, 0.0);  // never closed
  EXPECT_EQ(spans[b].parent, root);
  EXPECT_EQ(spans[b].depth, 1);
  // Closing a bogus index is ignored, not a crash.
  tracer.EndSpan(999, 1.0);
}

TEST(Tracer, NullTracerSpanIsANoOp) {
  TraceSpan span(nullptr, "ignored");  // must not crash
  SUCCEED();
}

TEST(Tracer, RenderIndentsByDepth) {
  Tracer tracer;
  {
    TraceSpan root(&tracer, "root");
    TraceSpan child(&tracer, "child");
  }
  const std::string text = tracer.Render();
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("child"), std::string::npos);
}

TEST(ScopedTimer, AccumulatesIntoSinkAndHistogram) {
  double sink = 0.0;
  Histogram h;
  {
    ScopedTimer timer(&sink, &h);
  }
  {
    ScopedTimer timer(&sink, &h);
  }
  EXPECT_GE(sink, 0.0);
  EXPECT_EQ(h.count(), 2u);
  { ScopedTimer none(static_cast<double*>(nullptr)); }  // null sink ok
}

// ---------------------------------------------------------------------------
// DropCounters

TEST(DropCounters, RecordsAndMerges) {
  DropCounters a;
  a.Record(DropReason::kTableMiss);
  a.Record(DropReason::kTableMiss);
  a.Record(DropReason::kNoFibRoute);
  EXPECT_EQ(a.count(DropReason::kTableMiss), 2u);
  EXPECT_EQ(a.total(), 3u);

  DropCounters b;
  b.Record(DropReason::kTableMiss);
  b.Record(DropReason::kHopLimit);
  a += b;
  EXPECT_EQ(a.count(DropReason::kTableMiss), 3u);
  EXPECT_EQ(a.count(DropReason::kHopLimit), 1u);
  EXPECT_EQ(a.total(), 5u);

  a.Reset();
  EXPECT_EQ(a.total(), 0u);
}

TEST(DropCounters, EveryReasonHasAUniqueName) {
  std::set<std::string> names;
  for (DropReason reason : kAllDropReasons) {
    names.insert(DropReasonName(reason));
  }
  EXPECT_EQ(names.size(), kDropReasonCount);
}

// ---------------------------------------------------------------------------
// Registry + snapshot

TEST(MetricsRegistry, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter& c1 = registry.GetCounter("x");
  c1.Increment(2);
  Counter& c2 = registry.GetCounter("x");
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 2u);
  // Same name in different kinds are distinct metrics.
  registry.GetGauge("x").Set(1.5);
  registry.GetHistogram("x").Observe(0.25);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, HistogramBoundsConflictIsDetectedNotSilent) {
  MetricsRegistry registry;
  registry.GetHistogram("lat", {1.0, 2.0}).Observe(0.5);
  // Re-resolving with the same layout is the normal handle pattern.
  registry.GetHistogram("lat", {1.0, 2.0});
  registry.GetHistogram("lat");  // bound-less lookup never conflicts
  EXPECT_EQ(registry.histogram_bounds_conflicts(), 0u);

  // A different layout for an existing histogram is a caller bug:
  // first-wins (re-bucketing live observations is impossible), an assert
  // fires in debug builds, and release builds count the conflict.
  EXPECT_DEBUG_DEATH(registry.GetHistogram("lat", {5.0}), "bucket bounds");
#ifdef NDEBUG
  EXPECT_EQ(registry.histogram_bounds_conflicts(), 1u);
#endif
  // The original layout and its observations survive either way.
  const Histogram& h = registry.GetHistogram("lat");
  EXPECT_EQ(h.upper_bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsRegistry, SnapshotCopiesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("hits").Increment(7);
  registry.GetGauge("fill").Set(0.5);
  Histogram& h = registry.GetHistogram("lat", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("hits"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("fill"), 0.5);
  const auto& view = snap.histograms.at("lat");
  EXPECT_EQ(view.count, 2u);
  EXPECT_DOUBLE_EQ(view.sum, 2.0);
  EXPECT_DOUBLE_EQ(view.min, 0.5);
  EXPECT_DOUBLE_EQ(view.max, 1.5);
  EXPECT_GT(view.p50, 0.0);
  ASSERT_EQ(view.upper_bounds.size(), 2u);
  ASSERT_EQ(view.bucket_counts.size(), 3u);
}

// Minimal JSON grammar checker — enough to prove ToJson() emits valid JSON
// and to collect an object's keys, without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    Space();
    return pos_ == text_.size();
  }

  // Keys of the top-level object (empty if the value is not an object).
  std::set<std::string> TopLevelKeys() {
    pos_ = 0;
    top_keys_.clear();
    collect_depth_ = 1;
    Value();
    return top_keys_;
  }

 private:
  void Space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String(std::string* out = nullptr) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      value.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    if (out != nullptr) *out = value;
    return true;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Value() {
    Space();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    ++depth_;
    Space();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      Space();
      std::string key;
      if (!String(&key)) return false;
      if (depth_ == collect_depth_) top_keys_.insert(key);
      Space();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      Space();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != '}') return false;
    ++pos_;
    --depth_;
    return true;
  }

  bool Array() {
    ++pos_;  // '['
    Space();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      Space();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  int collect_depth_ = -1;
  std::set<std::string> top_keys_;
};

TEST(MetricsSnapshot, ToJsonIsValidJsonWithTheDocumentedSchema) {
  MetricsRegistry registry;
  registry.GetCounter("drop.table_miss").Increment(3);
  registry.GetGauge("cache.fill").Set(0.75);
  Histogram& h = registry.GetHistogram("compile.seconds");
  h.Observe(0.001);
  h.Observe(0.25);

  const std::string json = registry.Snapshot().ToJson();
  JsonChecker checker(json);
  ASSERT_TRUE(checker.Valid()) << json;
  EXPECT_EQ(checker.TopLevelKeys(),
            (std::set<std::string>{"counters", "gauges", "histograms"}));

  // Histogram entries expose the documented fields.
  for (const char* field :
       {"\"count\"", "\"sum\"", "\"min\"", "\"max\"", "\"p50\"", "\"p95\"",
        "\"p99\"", "\"buckets\"", "\"le\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"drop.table_miss\": 3"), std::string::npos) << json;
}

TEST(MetricsSnapshot, ToJsonEscapesStrings) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\with\nstuff").Increment();
  const std::string json = registry.Snapshot().ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
}

TEST(MetricsSnapshot, EmptyRegistrySnapshotsToValidJson) {
  MetricsRegistry registry;
  const std::string json = registry.Snapshot().ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
}

TEST(MetricsSnapshot, ToTextMentionsEveryMetric) {
  MetricsRegistry registry;
  registry.GetCounter("a.count").Increment();
  registry.GetGauge("b.fill").Set(1.0);
  registry.GetHistogram("c.seconds").Observe(0.1);
  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("b.fill"), std::string::npos);
  EXPECT_NE(text.find("c.seconds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sharded hot-path counters (DESIGN.md §10)

TEST(ShardedCounter, CountsAndResets) {
  ShardedCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(9);
  EXPECT_EQ(c.value(), 10u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ShardedCounter, MergesIncrementsAcrossThreads) {
  ShardedCounter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  // Quiescent read: every increment is visible.
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ShardedDropCounters, SnapshotMatchesThePlainCounters) {
  ShardedDropCounters sharded;
  sharded.Record(DropReason::kTableMiss);
  sharded.Record(DropReason::kTableMiss);
  sharded.Record(DropReason::kNoFibRoute);
  EXPECT_EQ(sharded.count(DropReason::kTableMiss), 2u);
  EXPECT_EQ(sharded.total(), 3u);

  const DropCounters snap = sharded.Snapshot();
  for (DropReason reason : kAllDropReasons) {
    EXPECT_EQ(snap.count(reason), sharded.count(reason))
        << DropReasonName(reason);
  }
  EXPECT_EQ(snap.total(), 3u);

  sharded.Reset();
  EXPECT_EQ(sharded.total(), 0u);
}

TEST(ShardedDropCounters, ConcurrentRecordsAllLand) {
  ShardedDropCounters drops;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&drops, t] {
      const DropReason reason =
          t % 2 == 0 ? DropReason::kExplicitDrop : DropReason::kNoFibRoute;
      for (int i = 0; i < kPerThread; ++i) drops.Record(reason);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(drops.total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(drops.count(DropReason::kExplicitDrop),
            drops.count(DropReason::kNoFibRoute));
}

TEST(ShardedHistogram, BucketsLikeThePlainHistogram) {
  ShardedHistogram sharded({1.0, 10.0, 100.0});
  Histogram plain({1.0, 10.0, 100.0});
  for (double v : {0.5, 1.0, 5.0, 100.0, 1e6}) {
    sharded.Observe(v);
    plain.Observe(v);
  }
  EXPECT_EQ(sharded.count(), plain.count());
  EXPECT_EQ(sharded.bucket_counts(), plain.bucket_counts());
  EXPECT_DOUBLE_EQ(sharded.min(), plain.min());
  EXPECT_DOUBLE_EQ(sharded.max(), plain.max());
  // Sum is kept in integer nanounits: equal within that granularity.
  EXPECT_NEAR(sharded.sum(), plain.sum(), 1e-6 * plain.count());

  sharded.Reset();
  EXPECT_EQ(sharded.count(), 0u);
  EXPECT_EQ(sharded.sum(), 0.0);
  EXPECT_EQ(sharded.min(), 0.0);
  EXPECT_EQ(sharded.max(), 0.0);
}

TEST(ShardedHistogram, PercentilesComeFromTheSharedHelper) {
  ShardedHistogram h({10.0, 20.0, 30.0});
  for (int i = 1; i <= 10; ++i) h.Observe(10.0 + i);
  const double p50 = PercentileFromBuckets(h.upper_bounds(),
                                           h.bucket_counts(), h.count(),
                                           h.min(), h.max(), 0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
}

TEST(ShardedHistogram, ConcurrentObservationsMergeExactly) {
  ShardedHistogram h({0.25, 0.5, 1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(t % 2 == 0 ? 0.1 : 0.75);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kThreads / 2) *
                            kPerThread);  // the 0.1 observations
  EXPECT_EQ(buckets[3], 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 0.75);
}

// ---------------------------------------------------------------------------
// Registry concurrency (satellite: snapshot-vs-increment races). Run under
// TSan these would flag any unsynchronized metric access.

TEST(MetricsRegistry, SnapshotIsSafeAgainstConcurrentMutation) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      const std::string name = "w" + std::to_string(t);
      Counter& counter = registry.GetCounter(name + ".count");
      Gauge& gauge = registry.GetGauge(name + ".fill");
      Histogram& hist = registry.GetHistogram(name + ".seconds");
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.Increment();
        gauge.Add(0.5);
        hist.Observe(static_cast<double>(i % 100) * 1e-4);
        ++i;
      }
    });
  }
  // Readers snapshot while writers mutate AND register new metrics.
  for (int round = 0; round < 50; ++round) {
    registry.GetCounter("reader.round" + std::to_string(round)).Increment();
    const MetricsSnapshot snap = registry.Snapshot();
    for (const auto& [name, view] : snap.histograms) {
      // Internal consistency of each histogram view: buckets sum to count.
      std::uint64_t bucket_sum = 0;
      for (std::uint64_t b : view.bucket_counts) bucket_sum += b;
      EXPECT_EQ(bucket_sum, view.count) << name;
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();

  const MetricsSnapshot final_snap = registry.Snapshot();
  for (int t = 0; t < 4; ++t) {
    const std::string name = "w" + std::to_string(t);
    // Quiescent: counter, gauge, and histogram all saw the same event count.
    EXPECT_EQ(final_snap.counters.at(name + ".count"),
              final_snap.histograms.at(name + ".seconds").count);
    EXPECT_DOUBLE_EQ(
        final_snap.gauges.at(name + ".fill"),
        0.5 * static_cast<double>(final_snap.counters.at(name + ".count")));
  }
}

// ---------------------------------------------------------------------------
// Timer

TEST(Timer, SecondsSinceIsNonNegativeAndMonotone) {
  const auto start = Now();
  const double a = SecondsSince(start);
  const double b = SecondsSince(start);
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace sdx::obs
