// Cross-layer observability integration tests on the Figure 1 runtime:
// per-stage compile/update traces, drop-reason accounting (every refused
// packet lands in exactly one bucket), and the synced metrics snapshot.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sdx/multi_switch.h"
#include "sdx/runtime.h"

namespace sdx::core {
namespace {

using obs::DropReason;
using policy::Predicate;

constexpr AsNumber kA = 100;
constexpr AsNumber kB = 200;
constexpr AsNumber kC = 300;

// Same Figure-1 shape as test_sdx_runtime.cc: A peers with B (2 ports) and
// C; B's export of p4 to A is denied; A sends web via B, https via C.
class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_.AddParticipant(kA, 1);
    runtime_.AddParticipant(kB, 2);
    runtime_.AddParticipant(kC, 1);
    runtime_.route_server().DenyExport(kB, kA, P(4));
    for (int i = 1; i <= 4; ++i) runtime_.AnnouncePrefix(kB, P(i), {kB, 900});
    for (int i = 1; i <= 4; ++i) {
      runtime_.AnnouncePrefix(kC, P(i),
                              i == 3 ? std::vector<bgp::AsNumber>{kC, 901, 902}
                                     : std::vector<bgp::AsNumber>{kC});
    }
    OutboundClause web;
    web.match = Predicate::DstPort(80);
    web.to = kB;
    runtime_.SetOutboundPolicy(kA, {web});
    runtime_.FullCompile();
  }

  static net::IPv4Prefix P(int i) {
    return net::IPv4Prefix(net::IPv4Address(10, static_cast<uint8_t>(i), 0, 0),
                           16);
  }

  net::Packet PacketTo(net::IPv4Address dst, std::uint16_t dst_port) {
    net::Packet p;
    p.header.src_ip = net::IPv4Address(10, 99, 0, 1);
    p.header.dst_ip = dst;
    p.header.proto = net::kProtoTcp;
    p.header.dst_port = dst_port;
    p.size_bytes = 1000;
    return p;
  }

  net::Packet PacketToPrefix(int i, std::uint16_t dst_port) {
    return PacketTo(net::IPv4Address(10, static_cast<uint8_t>(i), 1, 1),
                    dst_port);
  }

  static std::vector<std::string> Names(
      const std::vector<obs::SpanRecord>& spans) {
    std::vector<std::string> out;
    out.reserve(spans.size());
    for (const auto& span : spans) out.push_back(span.name);
    return out;
  }

  static bool Contains(const std::vector<std::string>& names,
                       const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  }

  SdxRuntime runtime_;
};

// ---------------------------------------------------------------------------
// Per-stage traces

TEST_F(ObsIntegrationTest, FullCompileReportsEveryStage) {
  CompileStats stats = runtime_.FullCompile();
  const auto names = Names(stats.stages);
  for (const char* stage :
       {"full_compile", "recompute_groups", "fec_compute", "vnh_allocation",
        "readvertise_routes", "policy_composition", "inbound_blocks",
        "override_blocks", "default_blocks", "finalize_classifier",
        "rule_install"}) {
    EXPECT_TRUE(Contains(names, stage)) << stage;
  }

  // The root span covers the whole operation and the stage durations are
  // consistent with the reported total.
  ASSERT_FALSE(stats.stages.empty());
  EXPECT_EQ(stats.stages[0].name, "full_compile");
  EXPECT_EQ(stats.stages[0].depth, 0);
  EXPECT_LE(stats.stages[0].seconds, stats.seconds);
  double top_level_sum = 0.0;
  for (const auto& span : stats.stages) {
    if (span.depth == 1) top_level_sum += span.seconds;
  }
  EXPECT_LE(top_level_sum, stats.stages[0].seconds + 1e-9);

  // Nesting: fec_compute/vnh_allocation sit under recompute_groups;
  // inbound_blocks sits under policy_composition.
  for (const auto& span : stats.stages) {
    if (span.name == "fec_compute" || span.name == "vnh_allocation") {
      EXPECT_EQ(stats.stages[span.parent].name, "recompute_groups");
    }
    if (span.name == "inbound_blocks" || span.name == "override_blocks" ||
        span.name == "default_blocks" ||
        span.name == "finalize_classifier") {
      EXPECT_EQ(stats.stages[span.parent].name, "policy_composition");
    }
  }

  // The runtime keeps the last trace for introspection.
  EXPECT_GT(runtime_.last_trace().spans().size(), 0u);
  EXPECT_GT(runtime_.last_trace().SecondsFor("full_compile"), 0.0);
}

TEST_F(ObsIntegrationTest, FastPathUpdateReportsItsStages) {
  bgp::Announcement better;
  better.from_as = kB;
  better.route.prefix = P(1);
  better.route.as_path = {kB};  // shorter than before: best route changes
  better.route.local_pref = 500;
  better.route.next_hop = runtime_.RouterIp(kB);
  UpdateStats stats = runtime_.ApplyBgpUpdate(bgp::BgpUpdate{better});
  ASSERT_TRUE(stats.best_route_changed);

  const auto names = Names(stats.stages);
  for (const char* stage : {"apply_bgp_update", "rib_update",
                            "group_construction", "slice_compile",
                            "rule_install", "readvertise"}) {
    EXPECT_TRUE(Contains(names, stage)) << stage;
  }
}

TEST_F(ObsIntegrationTest, NoChangeUpdateHasNoFastPathStages) {
  // B re-announces its existing route for p1 verbatim: the adj-RIB-in is
  // unchanged, so no best route can change anywhere.
  bgp::Announcement same;
  same.from_as = kB;
  same.route.prefix = P(1);
  same.route.as_path = {kB, 900};
  same.route.next_hop = runtime_.RouterIp(kB);
  UpdateStats stats = runtime_.ApplyBgpUpdate(bgp::BgpUpdate{same});
  EXPECT_FALSE(stats.best_route_changed);
  const auto names = Names(stats.stages);
  EXPECT_TRUE(Contains(names, "rib_update"));
  EXPECT_FALSE(Contains(names, "slice_compile"));
}

// ---------------------------------------------------------------------------
// Drop accounting

TEST_F(ObsIntegrationTest, EveryRefusedPacketLandsInExactlyOneBucket) {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  auto inject = [&](AsNumber as, net::Packet packet) {
    ++injected;
    auto emissions = runtime_.InjectFromParticipant(as, std::move(packet));
    EXPECT_LE(emissions.size(), 1u);
    delivered += emissions.empty() ? 0 : 1;
  };

  // Delivered: A's web traffic to p1 via B.
  inject(kA, PacketToPrefix(1, 80));
  // Delivered: default BGP forwarding to p3 via B.
  inject(kA, PacketToPrefix(3, 443));
  // no_fib_route: no participant announced 172.16/12.
  inject(kA, PacketTo(*net::IPv4Address::Parse("172.16.5.5"), 80));
  inject(kA, PacketTo(*net::IPv4Address::Parse("172.16.5.6"), 80));
  // isolation_violation: traffic from an AS the SDX never registered.
  inject(999, PacketToPrefix(1, 80));
  // isolation_violation: reinjection on a port outside the fabric.
  ++injected;
  auto emissions = runtime_.ReinjectFromPort(net::PortId{999'999},
                                             PacketToPrefix(1, 80));
  EXPECT_TRUE(emissions.empty());

  const obs::DropCounters drops = runtime_.DropCounts();
  EXPECT_EQ(drops.count(DropReason::kNoFibRoute), 2u);
  EXPECT_EQ(drops.count(DropReason::kIsolationViolation), 2u);
  EXPECT_EQ(drops.count(DropReason::kArpUnresolved), 0u);
  EXPECT_EQ(drops.count(DropReason::kTableMiss), 0u);
  // Reconciliation: injected = delivered + sum of per-reason drops.
  EXPECT_EQ(injected, delivered + drops.total());

  // The per-reason counters appear in the snapshot under drop.<reason>.
  const obs::MetricsSnapshot snap = runtime_.SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("drop.no_fib_route"), 2u);
  EXPECT_EQ(snap.counters.at("drop.isolation_violation"), 2u);
  EXPECT_EQ(snap.counters.at("drop.table_miss"), 0u);
  // ...and reconcile against the traffic totals.
  EXPECT_EQ(snap.counters.at("traffic.received_packets"), delivered);
}

TEST_F(ObsIntegrationTest, TableMissIsOnlyPossibleBeforeCompilation) {
  // A fresh runtime's table is empty: the data plane records a miss, which
  // the taxonomy reserves for compiler bugs (catch-alls are always
  // installed after FullCompile).
  SdxRuntime fresh;
  fresh.AddParticipant(kA, 1);
  auto emissions = fresh.data_plane().Process(PacketToPrefix(1, 80));
  EXPECT_TRUE(emissions.empty());
  EXPECT_EQ(fresh.DropCounts().count(DropReason::kTableMiss), 1u);
}

TEST_F(ObsIntegrationTest, ExplicitDropIsDistinctFromTableMiss) {
  // A packet the fabric refuses by policy: it reaches the installed
  // classifier (whose bottom catch-all has an empty action list) instead of
  // missing the table. Bogus in_port + unknown dst MAC falls through every
  // forwarding band.
  net::Packet packet = PacketToPrefix(1, 80);
  packet.header.in_port = net::PortId{424'242};
  auto emissions = runtime_.data_plane().Process(packet);
  EXPECT_TRUE(emissions.empty());
  EXPECT_EQ(runtime_.DropCounts().count(DropReason::kExplicitDrop), 1u);
  EXPECT_EQ(runtime_.DropCounts().count(DropReason::kTableMiss), 0u);
}

TEST_F(ObsIntegrationTest, ArpUnresolvedIsAttributedByTheBorderRouter) {
  BorderRouter router(kA, net::PortId{1}, net::MacAddress{});
  router.InstallRoute(P(1), *net::IPv4Address::Parse("192.168.0.1"));
  dataplane::ArpResponder empty_arp;
  obs::DropReason reason = DropReason::kNoFibRoute;
  EXPECT_FALSE(router.EmitPacket(PacketToPrefix(1, 80), empty_arp, &reason));
  EXPECT_EQ(reason, DropReason::kArpUnresolved);
}

// ---------------------------------------------------------------------------
// Flow-table hit/miss counters (satellite: counter semantics)

TEST_F(ObsIntegrationTest, FlowTableCountsHitsAndMisses) {
  const auto& table = runtime_.data_plane().table();
  const std::uint64_t hits_before = table.hit_count();
  auto emissions = runtime_.InjectFromParticipant(kA, PacketToPrefix(1, 80));
  ASSERT_EQ(emissions.size(), 1u);
  EXPECT_GT(table.hit_count(), hits_before);
  EXPECT_EQ(table.miss_count(), 0u);

  const obs::MetricsSnapshot snap = runtime_.SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("dataplane.flow_table.hits"),
            table.hit_count());
  EXPECT_EQ(snap.counters.at("dataplane.flow_table.misses"), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot contents

TEST_F(ObsIntegrationTest, SnapshotCoversEveryComponent) {
  runtime_.InjectFromParticipant(kA, PacketToPrefix(1, 80));
  const obs::MetricsSnapshot snap = runtime_.SnapshotMetrics();

  // Compilation: the SetUp FullCompile recorded its latency histogram and
  // per-stage breakdowns.
  EXPECT_EQ(snap.counters.at("compile.count"), 1u);
  EXPECT_EQ(snap.histograms.at("compile.seconds").count, 1u);
  EXPECT_GT(snap.histograms.at("compile.seconds").sum, 0.0);
  EXPECT_TRUE(snap.histograms.contains("compile.stage.vnh_allocation.seconds"));
  EXPECT_TRUE(
      snap.histograms.contains("compile.stage.policy_composition.seconds"));
  EXPECT_GT(snap.gauges.at("compile.prefix_groups"), 0.0);
  EXPECT_GT(snap.gauges.at("compile.vnh_allocated"), 0.0);

  // Memoization cache: composing Figure 1 must produce misses, and the
  // snapshot mirrors the cache's own counters.
  EXPECT_EQ(snap.counters.at("cache.misses"), runtime_.cache().misses());
  EXPECT_GT(snap.counters.at("cache.misses"), 0u);
  EXPECT_EQ(snap.gauges.at("cache.entries"),
            static_cast<double>(runtime_.cache().size()));

  // Route server: per-participant announcement counters and the export
  // suppression from DenyExport(kB, kA, p4).
  EXPECT_EQ(snap.counters.at("rs.as200.announcements"), 4u);
  EXPECT_EQ(snap.counters.at("rs.as300.announcements"), 4u);
  EXPECT_GE(snap.counters.at("rs.export_suppressions"), 1u);

  // Traffic totals.
  EXPECT_EQ(snap.counters.at("traffic.as100.sent_packets"), 1u);
  EXPECT_EQ(snap.counters.at("traffic.received_packets"), 1u);

  // Every drop reason is present (zero or not) — dashboards can rely on
  // the full taxonomy existing.
  for (obs::DropReason reason : obs::kAllDropReasons) {
    EXPECT_TRUE(snap.counters.contains(std::string("drop.") +
                                       obs::DropReasonName(reason)))
        << obs::DropReasonName(reason);
  }

  // And the whole thing exports as non-empty JSON.
  EXPECT_GT(snap.ToJson().size(), 2u);
}

TEST_F(ObsIntegrationTest, BgpUpdateMetricsAccumulate) {
  bgp::Announcement better;
  better.from_as = kB;
  better.route.prefix = P(1);
  better.route.as_path = {kB};
  better.route.local_pref = 500;
  better.route.next_hop = runtime_.RouterIp(kB);
  runtime_.ApplyBgpUpdate(bgp::BgpUpdate{better});

  const obs::MetricsSnapshot snap = runtime_.SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("bgp_update.count"), 1u);
  EXPECT_EQ(snap.counters.at("bgp_update.best_route_changed"), 1u);
  EXPECT_EQ(snap.histograms.at("bgp_update.seconds").count, 1u);
  EXPECT_TRUE(
      snap.histograms.contains("bgp_update.stage.slice_compile.seconds"));
  // The fast-path singleton group shows up in the synced gauges.
  EXPECT_GT(snap.gauges.at("compile.fast_path_groups"), 0.0);
}

// ---------------------------------------------------------------------------
// Sinks propagation (satellite: one SetSinks wiring point per component)

TEST_F(ObsIntegrationTest, SinksExposeTheRuntimeBackendsAndShareOneJournal) {
  const obs::Sinks sinks = runtime_.sinks();
  EXPECT_EQ(sinks.metrics, &runtime_.metrics());
  EXPECT_EQ(sinks.journal, runtime_.journal());
  EXPECT_EQ(sinks.flows, nullptr);  // flow telemetry is off by default
  ASSERT_NE(sinks.journal, nullptr);

  // The data plane's wired journal IS the runtime's: a sentinel recorded
  // through the component handle surfaces in the shared ring.
  ASSERT_EQ(runtime_.data_plane().table().journal(), runtime_.journal());
  const std::uint64_t before = sinks.journal->next_seq();
  runtime_.data_plane().table().journal()->Record(
      obs::JournalEventType::kCompileBegin, obs::kNoUpdateId,
      /*arg0=*/424242);
  const auto events = runtime_.journal()->TailSince(before);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].arg0, 424242u);
}

TEST_F(ObsIntegrationTest, MultiSwitchSetSinksPropagatesTheSharedJournal) {
  MultiSwitchDeployment deployment(runtime_.topology(), 1);
  deployment.SetSinks(runtime_.sinks());
  const std::uint64_t before = runtime_.journal()->next_seq();
  deployment.Install(runtime_.data_plane().table().rules());
  // The deployment's switches journaled their installs into the runtime's
  // ring — no per-component journal, one flight recorder.
  bool saw_flow_mod = false;
  for (const obs::JournalEvent& e : runtime_.journal()->TailSince(before)) {
    saw_flow_mod = saw_flow_mod ||
                   e.type == obs::JournalEventType::kFlowRulesBulk ||
                   e.type == obs::JournalEventType::kFlowRuleInstall;
  }
  EXPECT_TRUE(saw_flow_mod);
}

// ---------------------------------------------------------------------------
// Flow telemetry (DESIGN.md §10)

TEST_F(ObsIntegrationTest, EnableFlowTelemetryWiresRecorderIntoSinks) {
  EXPECT_EQ(runtime_.flow_recorder(), nullptr);
  obs::FlowRecorder::Options options;
  options.sample_rate = 1;
  runtime_.EnableFlowTelemetry(options);
  ASSERT_NE(runtime_.flow_recorder(), nullptr);
  EXPECT_EQ(runtime_.sinks().flows, runtime_.flow_recorder());
  EXPECT_EQ(runtime_.data_plane().flow_recorder(), runtime_.flow_recorder());

  runtime_.DisableFlowTelemetry();
  EXPECT_EQ(runtime_.flow_recorder(), nullptr);
  EXPECT_EQ(runtime_.sinks().flows, nullptr);
  EXPECT_EQ(runtime_.data_plane().flow_recorder(), nullptr);
}

TEST_F(ObsIntegrationTest, FlowRecordsResolveParticipantsAndFec) {
  obs::FlowRecorder::Options options;
  options.sample_rate = 1;  // record every packet: deterministic counts
  runtime_.EnableFlowTelemetry(options);

  ASSERT_EQ(runtime_.InjectFromParticipant(kA, PacketToPrefix(1, 80)).size(),
            1u);
  obs::FlowRecorder* recorder = runtime_.flow_recorder();
  EXPECT_EQ(recorder->packets_seen(), 1u);
  recorder->FlushAll();
  const auto records = recorder->Drain();
  ASSERT_EQ(records.size(), 1u);
  // Port owners were seeded from the topology: A sent, B's port received
  // (A's web traffic goes to B per the outbound policy).
  EXPECT_EQ(records[0].src_as, kA);
  EXPECT_EQ(records[0].dst_as, kB);
  // The FEC tag is the ingress VMAC the route server assigned: non-zero
  // for a forwarded packet.
  EXPECT_NE(records[0].fec, 0u);
  EXPECT_EQ(records[0].sampled_packets, 1u);
  EXPECT_EQ(records[0].est_packets, 1u);

  // The telemetry self-metrics land in the runtime snapshot.
  const obs::MetricsSnapshot snap = runtime_.SnapshotMetrics();
  EXPECT_EQ(snap.counters.at("telemetry.packets_seen"), 1u);
  EXPECT_EQ(snap.counters.at("telemetry.flows_exported"), 1u);
}

TEST_F(ObsIntegrationTest, FlowTelemetryDoesNotChangeForwarding) {
  // The oracle property in miniature: the same packet set produces
  // byte-identical emissions with telemetry off and on.
  const std::vector<net::Packet> packets = {
      PacketToPrefix(1, 80),  PacketToPrefix(3, 443), PacketToPrefix(2, 80),
      PacketToPrefix(4, 443), PacketToPrefix(1, 22),
  };
  std::vector<std::vector<dataplane::Emission>> off;
  for (const auto& packet : packets) {
    off.push_back(runtime_.InjectFromParticipant(kA, packet));
  }

  obs::FlowRecorder::Options options;
  options.sample_rate = 2;
  runtime_.EnableFlowTelemetry(options);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto on = runtime_.InjectFromParticipant(kA, packets[i]);
    ASSERT_EQ(on.size(), off[i].size()) << "packet " << i;
    for (std::size_t j = 0; j < on.size(); ++j) {
      EXPECT_EQ(on[j].out_port, off[i][j].out_port) << "packet " << i;
      EXPECT_EQ(on[j].packet.header, off[i][j].packet.header) << "packet "
                                                              << i;
      EXPECT_EQ(on[j].packet.size_bytes, off[i][j].packet.size_bytes);
    }
  }
  EXPECT_GT(runtime_.flow_recorder()->packets_seen(), 0u);
}

}  // namespace
}  // namespace sdx::core
