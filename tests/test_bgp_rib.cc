#include "bgp/rib.h"

#include <gtest/gtest.h>

namespace sdx::bgp {
namespace {

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

BgpRoute MakeRoute(const char* prefix, std::vector<AsNumber> path) {
  BgpRoute route;
  route.prefix = Pfx(prefix);
  route.as_path = std::move(path);
  route.next_hop = net::IPv4Address(192, 168, 0, 1);
  return route;
}

TEST(AdjRibIn, AnnounceInsertsAndDetectsChange) {
  AdjRibIn rib;
  EXPECT_TRUE(rib.Announce(MakeRoute("10.0.0.0/8", {100})));
  EXPECT_FALSE(rib.Announce(MakeRoute("10.0.0.0/8", {100})));  // no change
  EXPECT_TRUE(rib.Announce(MakeRoute("10.0.0.0/8", {100, 200})));  // replaced
  EXPECT_EQ(rib.size(), 1u);
}

TEST(AdjRibIn, WithdrawReturnsRemovedRoute) {
  AdjRibIn rib;
  rib.Announce(MakeRoute("10.0.0.0/8", {100}));
  auto removed = rib.Withdraw(Pfx("10.0.0.0/8"));
  ASSERT_TRUE(removed);
  EXPECT_EQ(removed->as_path, std::vector<AsNumber>{100});
  EXPECT_FALSE(rib.Withdraw(Pfx("10.0.0.0/8")));
  EXPECT_EQ(rib.size(), 0u);
}

TEST(AdjRibIn, FindExactOnly) {
  AdjRibIn rib;
  rib.Announce(MakeRoute("10.0.0.0/8", {100}));
  EXPECT_NE(rib.Find(Pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(rib.Find(Pfx("10.0.0.0/16")), nullptr);
}

TEST(AdjRibIn, ForEachVisitsAll) {
  AdjRibIn rib;
  rib.Announce(MakeRoute("10.0.0.0/8", {100}));
  rib.Announce(MakeRoute("20.0.0.0/8", {100}));
  std::size_t count = 0;
  rib.ForEach([&](const BgpRoute&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(LocRib, SetAndRemove) {
  LocRib rib;
  EXPECT_TRUE(rib.Set(MakeRoute("10.0.0.0/8", {100})));
  EXPECT_FALSE(rib.Set(MakeRoute("10.0.0.0/8", {100})));
  EXPECT_TRUE(rib.Set(MakeRoute("10.0.0.0/8", {200})));
  auto removed = rib.Remove(Pfx("10.0.0.0/8"));
  ASSERT_TRUE(removed);
  EXPECT_EQ(removed->as_path, std::vector<AsNumber>{200});
  EXPECT_EQ(rib.size(), 0u);
}

TEST(LocRib, LongestPrefixLookup) {
  LocRib rib;
  rib.Set(MakeRoute("10.0.0.0/8", {100}));
  rib.Set(MakeRoute("10.1.0.0/16", {200}));
  auto route = rib.Lookup(net::IPv4Address(10, 1, 2, 3));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->as_path, std::vector<AsNumber>{200});
  route = rib.Lookup(net::IPv4Address(10, 2, 0, 1));
  ASSERT_TRUE(route);
  EXPECT_EQ(route->as_path, std::vector<AsNumber>{100});
  EXPECT_FALSE(rib.Lookup(net::IPv4Address(11, 0, 0, 1)));
}

TEST(LocRib, LookupReflectsRemoval) {
  LocRib rib;
  rib.Set(MakeRoute("10.1.0.0/16", {200}));
  rib.Remove(Pfx("10.1.0.0/16"));
  EXPECT_FALSE(rib.Lookup(net::IPv4Address(10, 1, 2, 3)));
}

TEST(LocRib, FilterByAsPath) {
  LocRib rib;
  rib.Set(MakeRoute("10.0.0.0/8", {100, 43515}));
  rib.Set(MakeRoute("20.0.0.0/8", {100, 200}));
  rib.Set(MakeRoute("30.0.0.0/8", {43515}));
  auto pattern = AsPathPattern::Compile(".*43515$");
  ASSERT_TRUE(pattern);
  auto matches = rib.FilterByAsPath(*pattern);
  EXPECT_EQ(matches.size(), 2u);
}

}  // namespace
}  // namespace sdx::bgp
