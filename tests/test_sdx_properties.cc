// System-level property tests over randomized scenarios (the DESIGN.md
// invariants):
//
//   * Fast-path correctness (invariant 7): after any sequence of BGP
//     updates applied through the §4.3.2 fast path, the fabric forwards
//     exactly like a from-scratch full compilation of the same state.
//   * Isolation (invariant 1): one participant's outbound policy never
//     affects another sender's traffic.
//   * BGP consistency (invariant 2): traffic for a prefix only ever exits
//     toward a participant that exported a usable route for it.
//   * No loops / single delivery (invariant 3): every injected packet
//     yields at most one emission, always at a physical port.
#include <gtest/gtest.h>

#include <random>

#include "sdx/runtime.h"
#include "workload/policy_gen.h"
#include "workload/topology_gen.h"
#include "workload/update_gen.h"

namespace sdx::core {
namespace {

struct StormParams {
  std::uint32_t seed;
  int participants;
  int prefixes;
  int updates;
};

class FastPathStorm : public ::testing::TestWithParam<StormParams> {};

net::Packet RandomPacket(std::mt19937& rng,
                         const workload::IxpScenario& scenario) {
  net::Packet packet;
  const auto& prefix =
      scenario.prefixes[rng() % scenario.prefixes.size()];
  packet.header.dst_ip =
      net::IPv4Address(prefix.network().value() | (rng() & 0xFF));
  packet.header.src_ip = net::IPv4Address(static_cast<std::uint32_t>(rng()));
  packet.header.proto = net::kProtoTcp;
  packet.header.src_port = static_cast<std::uint16_t>(rng());
  const std::uint16_t ports[] = {80, 443, 8080, 1935, 22, 1234};
  packet.header.dst_port = ports[rng() % 6];
  packet.size_bytes = 64;
  return packet;
}

TEST_P(FastPathStorm, FastPathMatchesFullRecompile) {
  const StormParams params = GetParam();
  workload::TopologyParams topo;
  topo.participants = params.participants;
  topo.total_prefixes = params.prefixes;
  topo.seed = params.seed;
  auto scenario = workload::TopologyGenerator(topo).Generate();
  workload::PolicyParams policy_params;
  policy_params.seed = params.seed + 1;
  policy_params.coverage_fanout = params.participants / 2;
  auto policies = workload::PolicyGenerator(policy_params).Generate(scenario);

  SdxRuntime fast;
  workload::Install(fast, scenario, policies);
  fast.FullCompile();

  // Apply an update storm through the fast path only.
  auto update_params = workload::UpdateStreamParams::Small(
      params.prefixes, static_cast<std::uint64_t>(params.updates),
      params.seed + 2);
  update_params.duration_seconds = 1e12;
  auto stream =
      workload::UpdateGenerator(update_params).GenerateFor(scenario);
  for (const auto& update : stream.updates) {
    fast.ApplyBgpUpdate(update);
  }

  // Reference: a second runtime fed the same history, then fully compiled.
  SdxRuntime reference;
  workload::Install(reference, scenario, policies);
  for (const auto& update : stream.updates) {
    reference.route_server().HandleUpdate(update);
  }
  reference.FullCompile();

  std::mt19937 rng(params.seed + 3);
  std::vector<bgp::AsNumber> senders;
  for (const auto& member : scenario.members) senders.push_back(member.as);

  int delivered = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const bgp::AsNumber from = senders[rng() % senders.size()];
    net::Packet packet = RandomPacket(rng, scenario);

    auto fast_out = fast.InjectFromParticipant(from, packet);
    auto ref_out = reference.InjectFromParticipant(from, packet);

    ASSERT_EQ(fast_out.size(), ref_out.size())
        << "sender AS" << from << " " << packet.header.ToString();
    if (fast_out.empty()) continue;
    ++delivered;
    ASSERT_EQ(fast_out.size(), 1u);
    EXPECT_EQ(fast_out[0].out_port, ref_out[0].out_port)
        << "sender AS" << from << " " << packet.header.ToString();
    EXPECT_EQ(fast_out[0].packet.header.dst_ip,
              ref_out[0].packet.header.dst_ip);
    EXPECT_EQ(fast_out[0].packet.header.dst_port,
              ref_out[0].packet.header.dst_port);
  }
  EXPECT_GT(delivered, 100);  // the comparison must exercise real traffic
}

INSTANTIATE_TEST_SUITE_P(
    Storms, FastPathStorm,
    ::testing::Values(StormParams{11, 10, 100, 40},
                      StormParams{12, 20, 200, 80},
                      StormParams{13, 30, 400, 120},
                      StormParams{14, 40, 400, 200}),
    [](const ::testing::TestParamInfo<StormParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.participants);
    });

class ScenarioInvariants : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::TopologyParams topo;
    topo.participants = 25;
    topo.total_prefixes = 300;
    topo.seed = 77;
    scenario_ = workload::TopologyGenerator(topo).Generate();
    workload::PolicyParams pp;
    pp.seed = 78;
    pp.coverage_fanout = 10;
    policies_ = workload::PolicyGenerator(pp).Generate(scenario_);
    workload::Install(runtime_, scenario_, policies_);
    runtime_.FullCompile();
  }

  workload::IxpScenario scenario_;
  workload::GeneratedPolicies policies_;
  SdxRuntime runtime_;
};

TEST_F(ScenarioInvariants, EveryEmissionExitsAtAPhysicalPort) {
  std::mt19937 rng(1);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto& member = scenario_.members[rng() % scenario_.members.size()];
    auto emissions =
        runtime_.InjectFromParticipant(member.as, RandomPacket(rng, scenario_));
    ASSERT_LE(emissions.size(), 1u);  // unicast policies only
    for (const auto& emission : emissions) {
      EXPECT_TRUE(runtime_.topology().IsPhysical(emission.out_port));
    }
  }
}

TEST_F(ScenarioInvariants, BgpConsistency) {
  // Every delivered packet exits at a participant that exported a usable
  // route for the packet's destination prefix to the sender — or hosts a
  // middlebox/replica named by an inbound clause (via_participant).
  std::mt19937 rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto& member = scenario_.members[rng() % scenario_.members.size()];
    net::Packet packet = RandomPacket(rng, scenario_);
    auto emissions = runtime_.InjectFromParticipant(member.as, packet);
    for (const auto& emission : emissions) {
      const auto* port = runtime_.topology().FindPhysicalPort(
          emission.out_port);
      ASSERT_NE(port, nullptr);
      // Destination prefix of the original packet.
      std::optional<net::IPv4Prefix> prefix;
      for (const auto& p : scenario_.prefixes) {
        if (p.Contains(packet.header.dst_ip)) {
          prefix = p;
          break;
        }
      }
      ASSERT_TRUE(prefix);
      EXPECT_TRUE(
          runtime_.route_server().ExportsTo(port->owner, member.as, *prefix))
          << "AS" << member.as << " -> AS" << port->owner << " for "
          << *prefix;
    }
  }
}

TEST_F(ScenarioInvariants, IsolationUnderPolicyRemoval) {
  // Removing one participant's outbound policy must not change any OTHER
  // sender's forwarding.
  bgp::AsNumber policy_holder = 0;
  for (const auto& [as, clauses] : policies_.outbound) {
    if (!clauses.empty()) {
      policy_holder = as;
      break;
    }
  }
  ASSERT_NE(policy_holder, 0u);

  std::mt19937 rng(3);
  struct Probe {
    bgp::AsNumber from;
    net::Packet packet;
    std::vector<dataplane::Emission> before;
  };
  std::vector<Probe> probes;
  for (int trial = 0; trial < 300; ++trial) {
    const auto& member = scenario_.members[rng() % scenario_.members.size()];
    if (member.as == policy_holder) continue;
    Probe probe;
    probe.from = member.as;
    probe.packet = RandomPacket(rng, scenario_);
    probe.before = runtime_.InjectFromParticipant(probe.from, probe.packet);
    probes.push_back(std::move(probe));
  }

  runtime_.SetOutboundPolicy(policy_holder, {});
  runtime_.FullCompile();

  for (const Probe& probe : probes) {
    auto after = runtime_.InjectFromParticipant(probe.from, probe.packet);
    ASSERT_EQ(after.size(), probe.before.size());
    for (std::size_t i = 0; i < after.size(); ++i) {
      EXPECT_EQ(after[i].out_port, probe.before[i].out_port)
          << "AS" << probe.from << " " << probe.packet.header.ToString();
    }
  }
}

TEST_F(ScenarioInvariants, DefaultEquivalenceWithoutPolicies) {
  // With every policy removed, forwarding equals pure BGP best-route
  // forwarding (invariant 4).
  for (const auto& member : scenario_.members) {
    runtime_.SetOutboundPolicy(member.as, {});
    runtime_.SetInboundPolicy(member.as, {});
  }
  runtime_.FullCompile();

  std::mt19937 rng(4);
  int delivered = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    const auto& member = scenario_.members[rng() % scenario_.members.size()];
    net::Packet packet = RandomPacket(rng, scenario_);
    auto emissions = runtime_.InjectFromParticipant(member.as, packet);

    auto best = [&]() -> const bgp::BgpRoute* {
      for (const auto& p : scenario_.prefixes) {
        if (p.Contains(packet.header.dst_ip)) {
          return runtime_.route_server().BestRoute(member.as, p);
        }
      }
      return nullptr;
    }();

    if (best == nullptr) {
      EXPECT_TRUE(emissions.empty());
      continue;
    }
    ASSERT_EQ(emissions.size(), 1u);
    ++delivered;
    const auto* port =
        runtime_.topology().FindPhysicalPort(emissions[0].out_port);
    ASSERT_NE(port, nullptr);
    EXPECT_EQ(port->owner, best->peer_as);
    EXPECT_EQ(port->index, 0);  // default delivery is port 0
  }
  EXPECT_GT(delivered, 300);
}

}  // namespace
}  // namespace sdx::core
