#include "policy/policy.h"

#include <gtest/gtest.h>

namespace sdx::policy {
namespace {

using dataplane::Rewrites;
using net::IPv4Address;
using net::IPv4Prefix;
using net::PacketHeader;

IPv4Prefix Pfx(const char* text) { return *IPv4Prefix::Parse(text); }

PacketHeader WebPacket() {
  PacketHeader h;
  h.in_port = 1;
  h.dst_ip = IPv4Address(74, 125, 1, 1);
  h.src_ip = IPv4Address(10, 0, 0, 1);
  h.proto = net::kProtoTcp;
  h.dst_port = 80;
  return h;
}

TEST(Policy, DropProducesNothing) {
  EXPECT_TRUE(Policy::Drop().Eval(WebPacket()).empty());
}

TEST(Policy, IdentityPassesUnchanged) {
  auto out = Policy::Identity().Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], WebPacket());
}

TEST(Policy, FilterKeepsOrDrops) {
  auto keep = Policy::Filter(Predicate::DstPort(80));
  EXPECT_EQ(keep.Eval(WebPacket()).size(), 1u);
  auto drop = Policy::Filter(Predicate::DstPort(443));
  EXPECT_TRUE(drop.Eval(WebPacket()).empty());
}

TEST(Policy, ModRewritesField) {
  Rewrites r;
  r.SetDstIp(IPv4Address(74, 125, 224, 161));
  auto out = Policy::Mod(r).Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_ip, IPv4Address(74, 125, 224, 161));
}

TEST(Policy, FwdMovesPacket) {
  auto out = Policy::Fwd(9).Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 9u);
}

TEST(Policy, ParallelUnionsResults) {
  // The paper's application-specific peering policy shape:
  // (match(dstport=80) >> fwd(B)) + (match(dstport=443) >> fwd(C)).
  auto policy = Policy::Guarded(Predicate::DstPort(80), Policy::Fwd(2)) +
                Policy::Guarded(Predicate::DstPort(443), Policy::Fwd(3));
  auto out = policy.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 2u);

  PacketHeader https = WebPacket();
  https.dst_port = 443;
  out = policy.Eval(https);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 3u);

  PacketHeader other = WebPacket();
  other.dst_port = 22;
  EXPECT_TRUE(policy.Eval(other).empty());  // neither matches => dropped
}

TEST(Policy, ParallelMulticasts) {
  auto policy = Policy::Fwd(2) + Policy::Fwd(3);
  auto out = policy.Eval(WebPacket());
  EXPECT_EQ(out.size(), 2u);
}

TEST(Policy, SequentialThreadsThroughOutputs) {
  Rewrites r;
  r.SetDstPort(8080);
  auto policy = Policy::Mod(r) >> Policy::Fwd(5);
  auto out = policy.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_port, 8080);
  EXPECT_EQ(out[0].in_port, 5u);
}

TEST(Policy, SequentialAfterFwdSeesNewLocation) {
  // After fwd(7) a match on in_port=7 holds — the virtual-topology hop.
  auto policy =
      Policy::Fwd(7) >> Policy::Guarded(Predicate::InPort(7), Policy::Fwd(9));
  auto out = policy.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 9u);

  auto mismatched =
      Policy::Fwd(7) >> Policy::Guarded(Predicate::InPort(8), Policy::Fwd(9));
  EXPECT_TRUE(mismatched.Eval(WebPacket()).empty());
}

TEST(Policy, IfBranches) {
  auto policy =
      Policy::If(Predicate::DstPort(80), Policy::Fwd(2), Policy::Fwd(3));
  EXPECT_EQ(policy.Eval(WebPacket())[0].in_port, 2u);
  PacketHeader ssh = WebPacket();
  ssh.dst_port = 22;
  EXPECT_EQ(policy.Eval(ssh)[0].in_port, 3u);
}

TEST(Policy, AlgebraicSimplifications) {
  EXPECT_EQ((Policy::Drop() + Policy::Fwd(1)).kind(), Policy::Kind::kFwd);
  EXPECT_EQ((Policy::Fwd(1) + Policy::Drop()).kind(), Policy::Kind::kFwd);
  EXPECT_EQ((Policy::Identity() >> Policy::Fwd(1)).kind(), Policy::Kind::kFwd);
  EXPECT_EQ((Policy::Fwd(1) >> Policy::Identity()).kind(), Policy::Kind::kFwd);
  EXPECT_EQ((Policy::Drop() >> Policy::Fwd(1)).kind(), Policy::Kind::kDrop);
  EXPECT_EQ((Policy::Fwd(1) >> Policy::Drop()).kind(), Policy::Kind::kDrop);
  EXPECT_EQ(Policy::Filter(Predicate::True()).kind(), Policy::Kind::kIdentity);
  EXPECT_EQ(Policy::Filter(Predicate::False()).kind(), Policy::Kind::kDrop);
  EXPECT_EQ(Policy::Mod(Rewrites()).kind(), Policy::Kind::kIdentity);
}

TEST(Policy, LoadBalancerExample) {
  // §3.1 wide-area server load balancing: rewrite anycast destination by
  // client prefix.
  Rewrites to_replica1;
  to_replica1.SetDstIp(IPv4Address(74, 125, 224, 161));
  Rewrites to_replica2;
  to_replica2.SetDstIp(IPv4Address(74, 125, 137, 139));
  auto policy = Policy::Guarded(
      Predicate::DstIp(Pfx("74.125.1.1/32")),
      Policy::Guarded(Predicate::SrcIp(Pfx("96.25.160.0/24")),
                      Policy::Mod(to_replica1)) +
          Policy::Guarded(Predicate::SrcIp(Pfx("128.125.163.0/24")),
                          Policy::Mod(to_replica2)));

  PacketHeader request;
  request.dst_ip = IPv4Address(74, 125, 1, 1);
  request.src_ip = IPv4Address(96, 25, 160, 7);
  auto out = policy.Eval(request);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_ip, IPv4Address(74, 125, 224, 161));

  request.src_ip = IPv4Address(128, 125, 163, 9);
  out = policy.Eval(request);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_ip, IPv4Address(74, 125, 137, 139));
}

TEST(Policy, ToStringIsReadable) {
  auto policy = Policy::Guarded(Predicate::DstPort(80), Policy::Fwd(2));
  EXPECT_EQ(policy.ToString(), "(match(dst_port=80) >> fwd(2))");
}

}  // namespace
}  // namespace sdx::policy
