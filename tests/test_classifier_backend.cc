// The compiled (tuple-space-search) lookup backend must be observationally
// identical to the linear reference scan — same matched rule on every
// packet, same tie-break contract, across incremental installs, bulk
// merges, and removals. Seeded fuzz drives the equivalence; the version
// counter guarantees a stale compile is never consulted.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "dataplane/classifier.h"
#include "dataplane/flow_table.h"
#include "dataplane/switch.h"

namespace sdx::dataplane {
namespace {

using net::FieldMatch;
using net::PacketHeader;

FlowRule MakeRule(std::int32_t priority, FieldMatch match, net::PortId out,
                  Cookie cookie = kNoCookie) {
  FlowRule rule;
  rule.priority = priority;
  rule.match = std::move(match);
  rule.actions = {Action{{}, out}};
  rule.cookie = cookie;
  return rule;
}

PacketHeader PortPacket(std::uint16_t dst_port) {
  PacketHeader h;
  h.in_port = 1;
  h.dst_port = dst_port;
  return h;
}

// Index of `rule` in the table's vector (identity across two tables that
// hold identical rule vectors).
std::ptrdiff_t IndexOf(const FlowTable& table, const FlowRule* rule) {
  if (rule == nullptr) return -1;
  return rule - table.rules().data();
}

// --- Mask extraction (net/flowspace) ---------------------------------

TEST(MaskSignature, ProjectionEquivalentToMatches) {
  // The classifier's correctness hinge: for sig = MaskSignatureOf(m),
  // m.Matches(h) iff ProjectKey(m, sig) == ProjectKey(h, sig).
  std::mt19937 rng(7);
  std::vector<FieldMatch> matches;
  matches.push_back(FieldMatch());  // wildcard
  for (int i = 0; i < 64; ++i) {
    FieldMatch m;
    if (rng() % 2) m.WithInPort(rng() % 8);
    if (rng() % 2) m.WithDstPort(static_cast<std::uint16_t>(rng() % 100));
    if (rng() % 2) m.WithProto(rng() % 2 ? 6 : 17);
    if (rng() % 2) {
      m.WithDstIp(net::IPv4Prefix(
          net::IPv4Address(static_cast<std::uint32_t>(rng())),
          static_cast<std::uint8_t>(rng() % 33)));
    }
    if (rng() % 2) m.WithSrcMac(net::MacAddress(rng() % 1024));
    matches.push_back(m);
  }
  for (int i = 0; i < 2000; ++i) {
    PacketHeader h;
    h.in_port = rng() % 8;
    h.dst_port = static_cast<std::uint16_t>(rng() % 100);
    h.proto = rng() % 2 ? 6 : 17;
    h.dst_ip = net::IPv4Address(static_cast<std::uint32_t>(rng()));
    h.src_mac = net::MacAddress(rng() % 1024);
    for (const FieldMatch& m : matches) {
      const net::MaskSignature sig = net::MaskSignatureOf(m);
      EXPECT_EQ(m.Matches(h),
                net::ProjectKey(m, sig) == net::ProjectKey(h, sig))
          << m.ToString() << " vs " << h.ToString();
    }
  }
}

// --- CompiledClassifier ----------------------------------------------

TEST(CompiledClassifier, GroupsRulesIntoTuples) {
  std::vector<FlowRule> rules;
  for (int i = 0; i < 16; ++i) {
    rules.push_back(MakeRule(100, FieldMatch::DstPort(1000 + i), 1));
  }
  for (int i = 0; i < 16; ++i) {
    rules.push_back(MakeRule(50, FieldMatch::InPort(i), 2));
  }
  rules.push_back(MakeRule(0, FieldMatch(), 3));  // catch-all
  CompiledClassifier classifier;
  classifier.Build(rules);
  EXPECT_EQ(classifier.tuple_count(), 3u);
  EXPECT_EQ(classifier.rule_count(), rules.size());

  PacketHeader h = PortPacket(1005);
  EXPECT_EQ(classifier.LookupIndex(h), 5u);
  h.dst_port = 9;  // falls through dst-port tuple, hits in-port tuple
  EXPECT_EQ(classifier.LookupIndex(h), 17u);
  h.in_port = 99;  // falls through to the wildcard
  EXPECT_EQ(classifier.LookupIndex(h), 32u);
}

TEST(CompiledClassifier, MissWithoutCatchAll) {
  std::vector<FlowRule> rules;
  rules.push_back(MakeRule(10, FieldMatch::DstPort(80), 1));
  CompiledClassifier classifier;
  classifier.Build(rules);
  EXPECT_EQ(classifier.LookupIndex(PortPacket(443)),
            CompiledClassifier::kNotFound);
}

// --- FlowTable backend contract --------------------------------------

class BackendTest : public ::testing::TestWithParam<FlowTable::Backend> {
 protected:
  FlowTable table_;
  void SetUp() override { table_.SetBackend(GetParam()); }
};

TEST_P(BackendTest, HigherPriorityWins) {
  table_.Install(MakeRule(10, FieldMatch(), 1));
  table_.Install(MakeRule(20, FieldMatch::DstPort(80), 2));
  ASSERT_NE(table_.Lookup(PortPacket(80)), nullptr);
  EXPECT_EQ(table_.Lookup(PortPacket(80))->actions[0].out_port, 2u);
  EXPECT_EQ(table_.Lookup(PortPacket(443))->actions[0].out_port, 1u);
}

// The tie-break ordering contract, asserted directly: Install is stable
// (first installed wins among equal priorities) and InstallAll merges
// with existing rules winning ties.
TEST_P(BackendTest, InstallTieBreakFirstInstalledWins) {
  table_.Install(MakeRule(10, FieldMatch::DstPort(80), 1));
  table_.Install(MakeRule(10, FieldMatch::DstPort(80), 2));
  const FlowRule* hit = table_.Lookup(PortPacket(80));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actions[0].out_port, 1u);
}

TEST_P(BackendTest, InstallAllTieBreakExistingRulesWin) {
  table_.Install(MakeRule(10, FieldMatch::DstPort(80), 1));
  std::vector<FlowRule> batch;
  batch.push_back(MakeRule(10, FieldMatch::DstPort(80), 2));
  batch.push_back(MakeRule(10, FieldMatch::DstPort(443), 3));
  table_.InstallAll(std::move(batch));
  ASSERT_EQ(table_.size(), 3u);
  const FlowRule* hit = table_.Lookup(PortPacket(80));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actions[0].out_port, 1u);  // pre-existing rule wins the tie
  hit = table_.Lookup(PortPacket(443));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actions[0].out_port, 3u);
}

TEST_P(BackendTest, RemoveByCookieUpdatesLookup) {
  table_.Install(MakeRule(20, FieldMatch::DstPort(80), 1, /*cookie=*/7));
  table_.Install(MakeRule(10, FieldMatch(), 2, /*cookie=*/8));
  EXPECT_EQ(table_.Lookup(PortPacket(80))->actions[0].out_port, 1u);
  EXPECT_EQ(table_.RemoveByCookie(7), 1u);
  EXPECT_EQ(table_.Lookup(PortPacket(80))->actions[0].out_port, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendTest,
    ::testing::Values(FlowTable::Backend::kLinear,
                      FlowTable::Backend::kCompiled),
    [](const ::testing::TestParamInfo<FlowTable::Backend>& info) {
      return info.param == FlowTable::Backend::kLinear ? "linear" : "compiled";
    });

// --- Version counter / staleness -------------------------------------

TEST(FlowTableVersioning, MutationsBumpVersionAndLookupNeverStale) {
  FlowTable table;  // compiled by default
  EXPECT_EQ(table.backend(), FlowTable::Backend::kCompiled);
  table.Install(MakeRule(10, FieldMatch::DstPort(80), 1));
  const std::uint64_t v1 = table.version();
  ASSERT_NE(table.Lookup(PortPacket(80)), nullptr);  // compiles on demand
  EXPECT_EQ(table.compiled_version(), v1);

  // A mutation invalidates the compile; the very next lookup must already
  // see the new rule — a stale classifier is never consulted.
  table.Install(MakeRule(20, FieldMatch::DstPort(80), 2));
  EXPECT_GT(table.version(), v1);
  const FlowRule* hit = table.Lookup(PortPacket(80));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->actions[0].out_port, 2u);
  EXPECT_EQ(table.compiled_version(), table.version());

  EXPECT_EQ(table.RemoveByCookie(kNoCookie), 2u);
  EXPECT_EQ(table.Lookup(PortPacket(80)), nullptr);
}

TEST(FlowTableVersioning, IncrementalInstallsMatchFullRebuild) {
  // A burst of single-rule installs onto a compiled table exercises the
  // incremental InsertRule replay; a reference table built in one shot
  // must agree everywhere.
  FlowTable incremental;
  FlowTable reference;
  std::vector<FlowRule> all;
  for (int i = 0; i < 12; ++i) {
    all.push_back(MakeRule(10 * (i % 4), FieldMatch::DstPort(1000 + i),
                           static_cast<net::PortId>(i), 100 + i));
  }
  all.push_back(MakeRule(0, FieldMatch(), 99));

  // Compile the incremental table early so later installs are replayed.
  incremental.Install(all[0]);
  ASSERT_NE(incremental.Lookup(PortPacket(1000)), nullptr);
  for (std::size_t i = 1; i < all.size(); ++i) incremental.Install(all[i]);
  for (const FlowRule& rule : all) reference.Install(rule);

  for (int port = 990; port < 1020; ++port) {
    const auto header = PortPacket(static_cast<std::uint16_t>(port));
    EXPECT_EQ(IndexOf(incremental, incremental.Lookup(header)),
              IndexOf(reference, reference.Lookup(header)))
        << "dst_port=" << port;
  }
}

TEST(FlowTableVersioning, SwitchingBackendsPreservesBehavior) {
  FlowTable table;
  table.SetBackend(FlowTable::Backend::kLinear);
  table.Install(MakeRule(10, FieldMatch::DstPort(80), 1));
  table.Install(MakeRule(0, FieldMatch(), 2));
  EXPECT_EQ(table.Lookup(PortPacket(80))->actions[0].out_port, 1u);
  table.SetBackend(FlowTable::Backend::kCompiled);
  EXPECT_EQ(table.Lookup(PortPacket(80))->actions[0].out_port, 1u);
  EXPECT_EQ(table.Lookup(PortPacket(22))->actions[0].out_port, 2u);
}

// --- Seeded fuzz equivalence ------------------------------------------

FieldMatch FuzzMatch(std::mt19937& rng) {
  FieldMatch m;
  if (rng() % 2) m.WithInPort(rng() % 6);
  if (rng() % 2) m.WithDstPort(static_cast<std::uint16_t>(rng() % 32));
  if (rng() % 3 == 0) m.WithSrcPort(static_cast<std::uint16_t>(rng() % 32));
  if (rng() % 3 == 0) m.WithProto(rng() % 2 ? 6 : 17);
  if (rng() % 3 == 0) m.WithDstMac(net::MacAddress(rng() % 16));
  if (rng() % 2) {
    // Small address pool + varied lengths → plenty of overlap and plenty
    // of distinct tuples.
    m.WithDstIp(net::IPv4Prefix(
        net::IPv4Address(10, 0, static_cast<std::uint8_t>(rng() % 4),
                         static_cast<std::uint8_t>(rng() % 8)),
        static_cast<std::uint8_t>(8 + 4 * (rng() % 7))));
  }
  if (rng() % 4 == 0) {
    m.WithSrcIp(net::IPv4Prefix(
        net::IPv4Address(static_cast<std::uint32_t>(rng())),
        static_cast<std::uint8_t>(rng() % 33)));
  }
  return m;
}

PacketHeader FuzzHeader(std::mt19937& rng) {
  PacketHeader h;
  h.in_port = rng() % 6;
  h.dst_port = static_cast<std::uint16_t>(rng() % 32);
  h.src_port = static_cast<std::uint16_t>(rng() % 32);
  h.proto = rng() % 2 ? 6 : 17;
  h.dst_mac = net::MacAddress(rng() % 16);
  h.src_mac = net::MacAddress(rng() % 16);
  h.dst_ip = net::IPv4Address(10, 0, static_cast<std::uint8_t>(rng() % 4),
                              static_cast<std::uint8_t>(rng() % 8));
  h.src_ip = net::IPv4Address(static_cast<std::uint32_t>(rng()));
  return h;
}

TEST(CompiledBackendFuzz, EquivalentToLinearAcrossMutations) {
  for (std::uint32_t seed = 1; seed <= 4; ++seed) {
    std::mt19937 rng(seed);
    FlowTable linear;
    linear.SetBackend(FlowTable::Backend::kLinear);
    FlowTable compiled;
    compiled.SetBackend(FlowTable::Backend::kCompiled);

    const auto check = [&](int rounds) {
      for (int i = 0; i < rounds; ++i) {
        const PacketHeader h = FuzzHeader(rng);
        ASSERT_EQ(IndexOf(linear, linear.Lookup(h)),
                  IndexOf(compiled, compiled.Lookup(h)))
            << "seed=" << seed << " header=" << h.ToString();
      }
    };

    // Phase 1: bulk install.
    std::vector<FlowRule> batch;
    for (int i = 0; i < 150; ++i) {
      batch.push_back(MakeRule(static_cast<std::int32_t>(rng() % 20),
                               FuzzMatch(rng),
                               static_cast<net::PortId>(rng() % 8),
                               /*cookie=*/1 + rng() % 5));
    }
    linear.InstallAll(batch);
    compiled.InstallAll(batch);
    check(400);

    // Phase 2: incremental single-rule installs (with priority ties).
    for (int i = 0; i < 50; ++i) {
      const FlowRule rule =
          MakeRule(static_cast<std::int32_t>(rng() % 20), FuzzMatch(rng),
                   static_cast<net::PortId>(rng() % 8), 1 + rng() % 5);
      linear.Install(rule);
      compiled.Install(rule);
    }
    check(400);

    // Phase 3: removal by cookie, then more installs.
    const Cookie victim = 1 + rng() % 5;
    ASSERT_EQ(linear.RemoveByCookie(victim), compiled.RemoveByCookie(victim));
    check(400);
    for (int i = 0; i < 20; ++i) {
      const FlowRule rule =
          MakeRule(static_cast<std::int32_t>(rng() % 20), FuzzMatch(rng),
                   static_cast<net::PortId>(rng() % 8), 1 + rng() % 5);
      linear.Install(rule);
      compiled.Install(rule);
    }
    check(400);
  }
}

// --- Batched processing ----------------------------------------------

TEST(ProcessBatch, MatchesSequentialProcessing) {
  std::mt19937 rng(11);
  std::vector<FlowRule> rules;
  for (int i = 0; i < 64; ++i) {
    rules.push_back(MakeRule(100, FieldMatch::DstPort(1000 + i),
                             static_cast<net::PortId>(16 + i % 4), 50 + i));
  }
  rules.push_back(MakeRule(0, FieldMatch(), 0, 1));
  rules.back().actions.clear();  // catch-all drop

  SwitchDataPlane sequential;
  SwitchDataPlane batched;
  sequential.table().InstallAll(rules);
  batched.table().InstallAll(rules);

  std::vector<net::Packet> packets;
  for (int i = 0; i < 500; ++i) {
    net::Packet p;
    p.header.in_port = rng() % 4;
    p.header.dst_port = static_cast<std::uint16_t>(1000 + rng() % 96);
    p.size_bytes = 64 + rng() % 512;
    packets.push_back(p);
  }

  std::vector<Emission> expected;
  for (const net::Packet& p : packets) {
    for (Emission& e : sequential.Process(p)) expected.push_back(std::move(e));
  }
  const std::vector<Emission> got = batched.ProcessBatch(packets);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].out_port, expected[i].out_port);
    EXPECT_EQ(got[i].packet.header, expected[i].packet.header);
    EXPECT_EQ(got[i].packet.size_bytes, expected[i].packet.size_bytes);
  }
  // Same counters and drops, port by port and reason by reason.
  for (net::PortId port = 0; port < 24; ++port) {
    EXPECT_EQ(batched.StatsFor(port).rx_packets,
              sequential.StatsFor(port).rx_packets);
    EXPECT_EQ(batched.StatsFor(port).tx_bytes,
              sequential.StatsFor(port).tx_bytes);
  }
  for (const obs::DropReason reason : obs::kAllDropReasons) {
    EXPECT_EQ(batched.drops().count(reason), sequential.drops().count(reason));
  }
  EXPECT_EQ(batched.table().hit_count(), sequential.table().hit_count());
  EXPECT_EQ(batched.table().miss_count(), sequential.table().miss_count());
}

}  // namespace
}  // namespace sdx::dataplane
