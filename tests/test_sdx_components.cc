// Unit tests for the policy transformations: isolation, BGP-consistency
// filters, default forwarding, and inbound delivery.
#include <gtest/gtest.h>

#include "sdx/bgp_filter.h"
#include "sdx/default_fwd.h"
#include "sdx/isolation.h"
#include "sdx/participant.h"

namespace sdx::core {
namespace {

using policy::Policy;
using policy::Predicate;

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

class ComponentsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_.AddParticipant(100, 1);  // A
    topo_.AddParticipant(200, 2);  // B
    topo_.AddParticipant(300, 1);  // C
    rs_.RegisterParticipant(100, net::IPv4Address(1, 1, 1, 1));
    rs_.RegisterParticipant(200, net::IPv4Address(2, 2, 2, 2));
    rs_.RegisterParticipant(300, net::IPv4Address(3, 3, 3, 3));
  }

  void Announce(AsNumber from, const char* prefix) {
    bgp::Announcement a;
    a.from_as = from;
    a.route.prefix = Pfx(prefix);
    a.route.as_path = {from};
    rs_.HandleUpdate(bgp::BgpUpdate{a});
  }

  VirtualTopology topo_;
  rs::RouteServer rs_;
};

TEST_F(ComponentsTest, OutboundIsolationMatchesOnlyOwnPorts) {
  Predicate iso_a = OutboundIsolation(topo_, 100);
  net::PacketHeader h;
  h.in_port = topo_.PhysicalPortOf(100, 0).id;
  EXPECT_TRUE(iso_a.Eval(h));
  h.in_port = topo_.PhysicalPortOf(200, 0).id;
  EXPECT_FALSE(iso_a.Eval(h));
  h.in_port = topo_.IngressPort(100);
  EXPECT_FALSE(iso_a.Eval(h));
}

TEST_F(ComponentsTest, OutboundIsolationCoversAllPorts) {
  Predicate iso_b = OutboundIsolation(topo_, 200);
  net::PacketHeader h;
  h.in_port = topo_.PhysicalPortOf(200, 1).id;
  EXPECT_TRUE(iso_b.Eval(h));
}

TEST_F(ComponentsTest, RemoteParticipantOutboundIsolationIsFalse) {
  topo_.AddParticipant(400, 0);
  EXPECT_EQ(OutboundIsolation(topo_, 400).kind(), Predicate::Kind::kFalse);
}

TEST_F(ComponentsTest, InboundIsolationMatchesVirtualPorts) {
  Predicate iso = InboundIsolation(topo_, 200);
  net::PacketHeader h;
  h.in_port = topo_.VirtualPort(200, 100);
  EXPECT_TRUE(iso.Eval(h));
  h.in_port = topo_.VirtualPort(100, 200);  // A's switch, not B's
  EXPECT_FALSE(iso.Eval(h));
  h.in_port = topo_.PhysicalPortOf(200, 0).id;
  EXPECT_FALSE(iso.Eval(h));
}

TEST_F(ComponentsTest, IsolateOutboundGuardsPolicy) {
  Policy p = IsolateOutbound(topo_, 100, Policy::Fwd(42));
  net::PacketHeader own;
  own.in_port = topo_.PhysicalPortOf(100, 0).id;
  EXPECT_EQ(p.Eval(own).size(), 1u);
  net::PacketHeader other;
  other.in_port = topo_.PhysicalPortOf(300, 0).id;
  EXPECT_TRUE(p.Eval(other).empty());
}

TEST_F(ComponentsTest, EligiblePrefixesFollowExports) {
  Announce(200, "10.1.0.0/16");
  Announce(200, "10.2.0.0/16");
  rs_.DenyExport(200, 100, Pfx("10.2.0.0/16"));

  OutboundClause clause;
  clause.to = 200;
  auto eligible = EligiblePrefixes(rs_, 100, clause);
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_EQ(eligible[0], Pfx("10.1.0.0/16"));
}

TEST_F(ComponentsTest, EligiblePrefixesRestrictedByClauseList) {
  Announce(200, "10.1.0.0/16");
  Announce(200, "10.2.0.0/16");
  OutboundClause clause;
  clause.to = 200;
  clause.dst_prefixes = {Pfx("10.2.0.0/16")};
  auto eligible = EligiblePrefixes(rs_, 100, clause);
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_EQ(eligible[0], Pfx("10.2.0.0/16"));
}

TEST_F(ComponentsTest, ClauseCoarseBlockAdmitsContainedExports) {
  // A clause naming the Amazon /16 admits announced /24s inside it.
  Announce(200, "54.230.1.0/24");
  OutboundClause clause;
  clause.to = 200;
  clause.dst_prefixes = {Pfx("54.230.0.0/16")};
  auto eligible = EligiblePrefixes(rs_, 100, clause);
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_EQ(eligible[0], Pfx("54.230.1.0/24"));
}

TEST_F(ComponentsTest, BgpFilterPredicateFalseWhenNothingEligible) {
  OutboundClause clause;
  clause.to = 200;
  EXPECT_EQ(BgpFilterPredicate(rs_, 100, clause).kind(),
            Predicate::Kind::kFalse);
}

TEST_F(ComponentsTest, InboundDeliveryDefaultsToPortZero) {
  Participant b(200, 2);
  Policy delivery = InboundDeliveryPolicy(topo_, b);
  net::PacketHeader h;
  h.in_port = topo_.IngressPort(200);
  auto out = delivery.Eval(h);
  ASSERT_EQ(out.size(), 1u);
  const PhysicalPort& b0 = topo_.PhysicalPortOf(200, 0);
  EXPECT_EQ(out[0].in_port, b0.id);
  EXPECT_EQ(out[0].dst_mac, b0.mac);
}

TEST_F(ComponentsTest, InboundClausesSelectPortsBySource) {
  // Figure 1a: B's inbound traffic engineering.
  Participant b(200, 2);
  InboundClause low;
  low.match = Predicate::SrcIp(Pfx("0.0.0.0/1"));
  low.port_index = 0;
  InboundClause high;
  high.match = Predicate::SrcIp(Pfx("128.0.0.0/1"));
  high.port_index = 1;
  b.SetInbound({low, high});

  Policy delivery = InboundDeliveryPolicy(topo_, b);
  net::PacketHeader h;
  h.src_ip = net::IPv4Address(10, 0, 0, 1);
  auto out = delivery.Eval(h);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, topo_.PhysicalPortOf(200, 0).id);

  h.src_ip = net::IPv4Address(200, 0, 0, 1);
  out = delivery.Eval(h);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, topo_.PhysicalPortOf(200, 1).id);
  EXPECT_EQ(out[0].dst_mac, topo_.PhysicalPortOf(200, 1).mac);
}

TEST_F(ComponentsTest, InboundClauseFirstMatchWins) {
  Participant b(200, 2);
  InboundClause first;
  first.match = Predicate::DstPort(80);
  first.port_index = 1;
  InboundClause second;
  second.match = Predicate::True();
  second.port_index = 0;
  b.SetInbound({first, second});
  Policy delivery = InboundDeliveryPolicy(topo_, b);
  net::PacketHeader h;
  h.dst_port = 80;
  EXPECT_EQ(delivery.Eval(h)[0].in_port, topo_.PhysicalPortOf(200, 1).id);
  h.dst_port = 22;
  EXPECT_EQ(delivery.Eval(h)[0].in_port, topo_.PhysicalPortOf(200, 0).id);
}

TEST_F(ComponentsTest, RemoteParticipantDropsUnmatchedInbound) {
  topo_.AddParticipant(400, 0);
  Participant d(400, 0);
  Policy delivery = InboundDeliveryPolicy(topo_, d);
  net::PacketHeader h;
  EXPECT_TRUE(delivery.Eval(h).empty());
}

TEST_F(ComponentsTest, RemoteParticipantDeliversViaHost) {
  // The wide-area load balancer: remote AS 400 rewrites the anycast
  // destination and delivers through B's port 1.
  topo_.AddParticipant(400, 0);
  Participant d(400, 0);
  InboundClause lb;
  lb.match = Predicate::DstIp(Pfx("74.125.1.1/32"));
  lb.rewrites.SetDstIp(net::IPv4Address(74, 125, 137, 139));
  lb.port_index = 1;
  lb.via_participant = 200;
  d.SetInbound({lb});

  Policy delivery = InboundDeliveryPolicy(topo_, d);
  net::PacketHeader h;
  h.dst_ip = net::IPv4Address(74, 125, 1, 1);
  auto out = delivery.Eval(h);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_ip, net::IPv4Address(74, 125, 137, 139));
  EXPECT_EQ(out[0].in_port, topo_.PhysicalPortOf(200, 1).id);
  EXPECT_EQ(out[0].dst_mac, topo_.PhysicalPortOf(200, 1).mac);
}

TEST_F(ComponentsTest, DefaultFabricPolicyRoutesVmacsAndRealMacs) {
  GroupTable groups;
  AnnotatedGroup g;
  g.id = 0;
  g.prefixes = {Pfx("10.0.0.0/8")};
  g.binding = {net::IPv4Address(172, 16, 0, 1), net::MacAddress(0xA0001)};
  g.best_hop = 300;
  groups.groups.push_back(g);

  Policy fabric = DefaultFabricPolicy(topo_, groups);

  net::PacketHeader vmac_packet;
  vmac_packet.dst_mac = net::MacAddress(0xA0001);
  auto out = fabric.Eval(vmac_packet);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, topo_.IngressPort(300));

  net::PacketHeader real_packet;
  real_packet.dst_mac = topo_.PhysicalPortOf(200, 0).mac;
  out = fabric.Eval(real_packet);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, topo_.IngressPort(200));

  net::PacketHeader unknown;
  unknown.dst_mac = net::MacAddress(0xDEAD);
  EXPECT_TRUE(fabric.Eval(unknown).empty());
}

TEST_F(ComponentsTest, DefaultFabricSkipsUnreachableGroups) {
  GroupTable groups;
  AnnotatedGroup g;
  g.binding = {net::IPv4Address(172, 16, 0, 1), net::MacAddress(0xA0001)};
  g.best_hop = 0;  // withdrawn everywhere
  groups.groups.push_back(g);
  Policy fabric = DefaultFabricPolicy(topo_, groups);
  net::PacketHeader h;
  h.dst_mac = net::MacAddress(0xA0001);
  EXPECT_TRUE(fabric.Eval(h).empty());
}

}  // namespace
}  // namespace sdx::core
