#include "net/flowspace.h"

#include <gtest/gtest.h>

#include <random>

namespace sdx::net {
namespace {

IPv4Prefix Pfx(const char* text) {
  auto p = IPv4Prefix::Parse(text);
  EXPECT_TRUE(p) << text;
  return *p;
}

PacketHeader WebPacket() {
  PacketHeader h;
  h.in_port = 1;
  h.src_mac = MacAddress(0x1);
  h.dst_mac = MacAddress(0x2);
  h.src_ip = IPv4Address(10, 0, 0, 1);
  h.dst_ip = IPv4Address(74, 125, 1, 1);
  h.proto = kProtoTcp;
  h.src_port = 50000;
  h.dst_port = 80;
  return h;
}

TEST(FieldMatch, WildcardMatchesEverything) {
  FieldMatch m;
  EXPECT_TRUE(m.IsWildcard());
  EXPECT_TRUE(m.Matches(WebPacket()));
  EXPECT_EQ(m.ConstrainedFieldCount(), 0);
}

TEST(FieldMatch, SingleFieldMatching) {
  EXPECT_TRUE(FieldMatch::DstPort(80).Matches(WebPacket()));
  EXPECT_FALSE(FieldMatch::DstPort(443).Matches(WebPacket()));
  EXPECT_TRUE(FieldMatch::InPort(1).Matches(WebPacket()));
  EXPECT_FALSE(FieldMatch::InPort(2).Matches(WebPacket()));
  EXPECT_TRUE(FieldMatch::DstIp(Pfx("74.125.0.0/16")).Matches(WebPacket()));
  EXPECT_FALSE(FieldMatch::DstIp(Pfx("74.126.0.0/16")).Matches(WebPacket()));
  EXPECT_TRUE(FieldMatch::Proto(kProtoTcp).Matches(WebPacket()));
}

TEST(FieldMatch, ConjunctionMatching) {
  auto m = FieldMatch::DstPort(80).WithInPort(1).WithSrcIp(Pfx("10.0.0.0/8"));
  EXPECT_EQ(m.ConstrainedFieldCount(), 3);
  EXPECT_TRUE(m.Matches(WebPacket()));
  auto p = WebPacket();
  p.src_ip = IPv4Address(11, 0, 0, 1);
  EXPECT_FALSE(m.Matches(p));
}

TEST(FieldMatch, IntersectDisjointExactFields) {
  auto a = FieldMatch::DstPort(80);
  auto b = FieldMatch::DstPort(443);
  EXPECT_FALSE(a.Intersect(b));
  EXPECT_TRUE(a.IsDisjoint(b));
}

TEST(FieldMatch, IntersectOrthogonalFields) {
  auto a = FieldMatch::DstPort(80);
  auto b = FieldMatch::SrcIp(Pfx("0.0.0.0/1"));
  auto i = a.Intersect(b);
  ASSERT_TRUE(i);
  EXPECT_EQ(i->dst_port(), std::uint16_t{80});
  EXPECT_EQ(i->src_ip(), Pfx("0.0.0.0/1"));
  EXPECT_EQ(i->ConstrainedFieldCount(), 2);
}

TEST(FieldMatch, IntersectPrefixesTakesLonger) {
  auto a = FieldMatch::DstIp(Pfx("10.0.0.0/8"));
  auto b = FieldMatch::DstIp(Pfx("10.1.0.0/16"));
  auto i = a.Intersect(b);
  ASSERT_TRUE(i);
  EXPECT_EQ(i->dst_ip(), Pfx("10.1.0.0/16"));
}

TEST(FieldMatch, IntersectDisjointPrefixes) {
  auto a = FieldMatch::DstIp(Pfx("10.0.0.0/8"));
  auto b = FieldMatch::DstIp(Pfx("11.0.0.0/8"));
  EXPECT_FALSE(a.Intersect(b));
}

TEST(FieldMatch, IntersectWithWildcardIsIdentity) {
  auto a = FieldMatch::DstPort(80).WithProto(kProtoTcp);
  auto i = a.Intersect(FieldMatch());
  ASSERT_TRUE(i);
  EXPECT_EQ(*i, a);
}

TEST(FieldMatch, SubsetSemantics) {
  auto narrow = FieldMatch::DstPort(80).WithInPort(1);
  auto wide = FieldMatch::DstPort(80);
  EXPECT_TRUE(narrow.IsSubsetOf(wide));
  EXPECT_FALSE(wide.IsSubsetOf(narrow));
  EXPECT_TRUE(narrow.IsSubsetOf(FieldMatch()));
  EXPECT_TRUE(narrow.IsSubsetOf(narrow));

  auto sub_prefix = FieldMatch::DstIp(Pfx("10.1.0.0/16"));
  auto super_prefix = FieldMatch::DstIp(Pfx("10.0.0.0/8"));
  EXPECT_TRUE(sub_prefix.IsSubsetOf(super_prefix));
  EXPECT_FALSE(super_prefix.IsSubsetOf(sub_prefix));
}

TEST(FieldMatch, ClearFieldAndConstrains) {
  auto m = FieldMatch::DstPort(80).WithSrcIp(Pfx("10.0.0.0/8"));
  EXPECT_TRUE(m.Constrains(Field::kDstPort));
  EXPECT_TRUE(m.Constrains(Field::kSrcIp));
  EXPECT_FALSE(m.Constrains(Field::kDstIp));
  m.ClearField(Field::kDstPort);
  EXPECT_FALSE(m.Constrains(Field::kDstPort));
  EXPECT_EQ(m.ConstrainedFieldCount(), 1);
}

TEST(FieldMatch, HashEqualityConsistency) {
  auto a = FieldMatch::DstPort(80).WithInPort(3);
  auto b = FieldMatch::DstPort(80).WithInPort(3);
  auto c = FieldMatch::DstPort(81).WithInPort(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(HashValue(a), HashValue(b));
  EXPECT_NE(a, c);
}

TEST(FieldMatch, ToStringListsFields) {
  auto m = FieldMatch::DstPort(80).WithSrcIp(Pfx("10.0.0.0/8"));
  EXPECT_EQ(m.ToString(), "src_ip=10.0.0.0/8, dst_port=80");
  EXPECT_EQ(FieldMatch().ToString(), "*");
}

// Property: intersection is the set-theoretic conjunction — a random packet
// matches the intersection iff it matches both operands.
TEST(FieldMatchProperty, IntersectionAgreesWithConjunction) {
  std::mt19937 rng(42);
  auto random_match = [&]() {
    FieldMatch m;
    if (rng() % 3 == 0) m.WithInPort(rng() % 4);
    if (rng() % 3 == 0) m.WithProto(rng() % 2 ? kProtoTcp : kProtoUdp);
    if (rng() % 3 == 0) m.WithDstPort(rng() % 2 ? 80 : 443);
    if (rng() % 3 == 0) {
      m.WithDstIp(IPv4Prefix(IPv4Address(static_cast<std::uint32_t>(rng())),
                             static_cast<std::uint8_t>(rng() % 25)));
    }
    if (rng() % 3 == 0) {
      m.WithSrcIp(IPv4Prefix(IPv4Address(static_cast<std::uint32_t>(rng())),
                             static_cast<std::uint8_t>(rng() % 25)));
    }
    return m;
  };
  auto random_packet = [&]() {
    PacketHeader h;
    h.in_port = rng() % 4;
    h.src_ip = IPv4Address(static_cast<std::uint32_t>(rng()));
    h.dst_ip = IPv4Address(static_cast<std::uint32_t>(rng()));
    h.proto = rng() % 2 ? kProtoTcp : kProtoUdp;
    h.src_port = static_cast<std::uint16_t>(rng());
    h.dst_port = rng() % 2 ? 80 : 443;
    return h;
  };

  for (int trial = 0; trial < 2000; ++trial) {
    FieldMatch a = random_match();
    FieldMatch b = random_match();
    auto intersection = a.Intersect(b);
    PacketHeader p = random_packet();
    const bool both = a.Matches(p) && b.Matches(p);
    const bool via_intersection = intersection && intersection->Matches(p);
    EXPECT_EQ(both, via_intersection)
        << "a=" << a << " b=" << b << " p=" << p;
  }
}

// Property: IsSubsetOf is sound — if a ⊆ b then any packet matching a
// matches b.
TEST(FieldMatchMasked, MatchesUnderMask) {
  // Match the top byte (0x0E marker) and bit 3, ignore everything else —
  // the shape of an encoded-VMAC clause rule (sdx/reach.h).
  const std::uint64_t mask = (0xFFull << 40) | (1ull << 3);
  const FieldMatch m =
      FieldMatch::DstMacMasked(MacAddress((0x0Eull << 40) | (1ull << 3)), mask);
  PacketHeader h = WebPacket();
  h.dst_mac = MacAddress((0x0Eull << 40) | (1ull << 3) | 0xBEEF00ull);
  EXPECT_TRUE(m.Matches(h));
  h.dst_mac = MacAddress((0x0Eull << 40) | 0xBEEF00ull);  // bit 3 clear
  EXPECT_FALSE(m.Matches(h));
  h.dst_mac = MacAddress((0x0Aull << 40) | (1ull << 3));  // wrong marker
  EXPECT_FALSE(m.Matches(h));
}

TEST(FieldMatchMasked, FullMaskNormalizesToExactMatch) {
  const FieldMatch masked =
      FieldMatch::DstMacMasked(MacAddress(0x42), kFullMacMask);
  EXPECT_EQ(masked, FieldMatch::DstMac(MacAddress(0x42)));
  EXPECT_FALSE(masked.dst_mac_is_masked());
  EXPECT_EQ(masked.dst_mac_mask(), kFullMacMask);
}

TEST(FieldMatchMasked, IntersectCombinesMasks) {
  // Disjoint masks: intersection constrains the union of the cared-for
  // bits.
  const FieldMatch marker =
      FieldMatch::DstMacMasked(MacAddress(0x0Eull << 40), 0xFFull << 40);
  const FieldMatch bit = FieldMatch::DstMacMasked(MacAddress(1ull << 5),
                                                  1ull << 5);
  auto both = marker.Intersect(bit);
  ASSERT_TRUE(both);
  EXPECT_EQ(both->dst_mac_mask(), (0xFFull << 40) | (1ull << 5));
  PacketHeader h = WebPacket();
  h.dst_mac = MacAddress((0x0Eull << 40) | (1ull << 5) | 0x1204ull);
  EXPECT_TRUE(both->Matches(h));
  h.dst_mac = MacAddress((0x0Eull << 40) | 0x1204ull);  // bit 5 clear
  EXPECT_FALSE(both->Matches(h));

  // Conflicting values on a shared cared-for bit: disjoint.
  const FieldMatch clear = FieldMatch::DstMacMasked(MacAddress(0), 1ull << 5);
  EXPECT_FALSE(bit.Intersect(clear));

  // Exact match inside the masked region refines it.
  auto exact = marker.Intersect(
      FieldMatch::DstMac(MacAddress((0x0Eull << 40) | 7)));
  ASSERT_TRUE(exact);
  EXPECT_FALSE(exact->dst_mac_is_masked());
}

TEST(FieldMatchMasked, SubsetRespectsMasks) {
  const FieldMatch wide =
      FieldMatch::DstMacMasked(MacAddress(0x0Eull << 40), 0xFFull << 40);
  const FieldMatch narrow = FieldMatch::DstMacMasked(
      MacAddress((0x0Eull << 40) | (1ull << 2)), (0xFFull << 40) | (1ull << 2));
  EXPECT_TRUE(narrow.IsSubsetOf(wide));
  EXPECT_FALSE(wide.IsSubsetOf(narrow));
  EXPECT_TRUE(FieldMatch::DstMac(MacAddress(0x0Eull << 40)).IsSubsetOf(wide));
  EXPECT_FALSE(FieldMatch::DstMac(MacAddress(0x0Aull << 40)).IsSubsetOf(wide));
}

TEST(FieldMatchMasked, ClearFieldDropsMask) {
  FieldMatch m = FieldMatch::DstMacMasked(MacAddress(1ull << 4), 1ull << 4);
  m.ClearField(Field::kDstMac);
  EXPECT_TRUE(m.IsWildcard());
  EXPECT_FALSE(m.dst_mac_is_masked());
}

TEST(FieldMatchProperty, SubsetSoundness) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    FieldMatch a;
    if (rng() % 2) a.WithInPort(rng() % 3);
    if (rng() % 2) a.WithDstPort(rng() % 2 ? 80 : 443);
    if (rng() % 2) {
      a.WithDstIp(IPv4Prefix(IPv4Address(static_cast<std::uint32_t>(rng())),
                             static_cast<std::uint8_t>(8 + rng() % 17)));
    }
    FieldMatch b = a;
    // Weaken b by removing a random constrained field, making a ⊆ b.
    if (b.Constrains(Field::kDstIp) && rng() % 2) b.ClearField(Field::kDstIp);
    if (b.Constrains(Field::kDstPort) && rng() % 2) {
      b.ClearField(Field::kDstPort);
    }
    EXPECT_TRUE(a.IsSubsetOf(b)) << "a=" << a << " b=" << b;

    PacketHeader p;
    p.in_port = rng() % 3;
    p.dst_ip = IPv4Address(static_cast<std::uint32_t>(rng()));
    p.dst_port = rng() % 2 ? 80 : 443;
    if (a.Matches(p)) {
      EXPECT_TRUE(b.Matches(p));
    }
  }
}

}  // namespace
}  // namespace sdx::net
