// Unit tests for the iSDX-style encoded-VMAC machinery (sdx/reach.h):
// layout codecs, roster numbering, multi-word reachability bitmaps, clause
// eligibility bits (including the >kEncodedClauseBits overflow), per-sender
// VMAC derivation with its roster fallback, and a runtime-level check that
// rosters past 64 participants spill into a second bitmap word.
#include "sdx/reach.h"

#include <gtest/gtest.h>

#include "sdx/group_table.h"
#include "sdx/runtime.h"

namespace sdx::core {
namespace {

TEST(EncodedVmac, RoundTripsFields) {
  const net::MacAddress mac = EncodeVmac(0x1234, 0x00ABCDEF);
  EXPECT_TRUE(IsEncodedVmac(mac));
  EXPECT_EQ(EncodedNhIndex(mac), 0x1234u);
  EXPECT_EQ(EncodedClauseBits(mac), 0x00ABCDEFu);
}

TEST(EncodedVmac, MarkerDisjointFromLegacyAndPortMacs) {
  // Legacy VMACs use the 0x0A OUI byte (vnh.h), physical port MACs 0x02
  // (vswitch); neither may ever satisfy an encoded masked rule.
  const net::MacAddress legacy((std::uint64_t{0x0A} << 40) | 7);
  const net::MacAddress port_mac((std::uint64_t{0x02} << 40) | 9);
  EXPECT_FALSE(IsEncodedVmac(legacy));
  EXPECT_FALSE(IsEncodedVmac(port_mac));
  EXPECT_TRUE(IsEncodedVmac(EncodeVmac(0, 0)));
}

TEST(EncodedVmac, TruncatesOutOfRangeFields) {
  // nh field is 16 bits, clause field kEncodedClauseBits; excess bits must
  // never leak into the marker byte or each other.
  const net::MacAddress mac = EncodeVmac(0xFFFFFFFFu, 0xFFFFFFFFu);
  EXPECT_TRUE(IsEncodedVmac(mac));
  EXPECT_EQ(EncodedNhIndex(mac), 0xFFFFu);
  EXPECT_EQ(EncodedClauseBits(mac), kEncodedClauseMask);
}

TEST(Roster, IndexOfAndAsAtRoundTrip) {
  const Roster roster({100, 200, 300});
  EXPECT_EQ(roster.size(), 3u);
  EXPECT_EQ(roster.IndexOf(100), 1u);
  EXPECT_EQ(roster.IndexOf(200), 2u);
  EXPECT_EQ(roster.IndexOf(300), 3u);
  EXPECT_EQ(roster.AsAt(1), 100u);
  EXPECT_EQ(roster.AsAt(3), 300u);
}

TEST(Roster, UnknownAsAndIndexZeroAreReserved) {
  const Roster roster({100, 200});
  EXPECT_EQ(roster.IndexOf(150), 0u);
  EXPECT_EQ(roster.AsAt(0), 0u);
  EXPECT_EQ(roster.AsAt(3), 0u);
  EXPECT_EQ(Roster().IndexOf(100), 0u);
}

TEST(ReachabilityBitmap, MultiWordPast64Participants) {
  ReachabilityBitmap bitmap;
  EXPECT_TRUE(bitmap.Empty());
  bitmap.Set(1);
  bitmap.Set(63);
  bitmap.Set(64);   // first bit of the second word
  bitmap.Set(130);  // third word
  EXPECT_EQ(bitmap.words().size(), 3u);
  EXPECT_EQ(bitmap.Count(), 4u);
  EXPECT_TRUE(bitmap.Test(1));
  EXPECT_TRUE(bitmap.Test(64));
  EXPECT_TRUE(bitmap.Test(130));
  EXPECT_FALSE(bitmap.Test(2));
  EXPECT_FALSE(bitmap.Test(129));
  EXPECT_FALSE(bitmap.Test(100000));  // beyond allocated words
  EXPECT_FALSE(bitmap.Empty());

  ReachabilityBitmap other;
  other.Set(1);
  EXPECT_NE(bitmap, other);
}

AnnotatedGroup MakeGroup(bgp::AsNumber best_hop,
                         std::vector<std::uint32_t> member_of) {
  AnnotatedGroup group;
  group.best_hop = best_hop;
  group.member_of = std::move(member_of);
  return group;
}

TEST(SenderClauseBits, SetsBitPerEligibleClause) {
  // Sender 100 has clauses 0, 1, 2 with behavior sets 10, 11, 12; the group
  // belongs to sets 10 and 12, so bits 0 and 2 are set. Another sender's
  // clauses never contribute.
  ClauseSetIds ids;
  ids[{100, 0}] = 10;
  ids[{100, 1}] = 11;
  ids[{100, 2}] = 12;
  ids[{200, 0}] = 10;
  const AnnotatedGroup group = MakeGroup(300, {10, 12});
  const SenderClauseView view = SenderClauseBitsFor(group, 100, ids);
  EXPECT_EQ(view.bits, 0b101u);
  EXPECT_FALSE(view.overflow);
  EXPECT_EQ(SenderClauseBitsFor(group, 200, ids).bits, 0b1u);
  EXPECT_EQ(SenderClauseBitsFor(group, 999, ids).bits, 0u);
}

TEST(SenderClauseBits, ClausePastBitWidthOverflows) {
  ClauseSetIds ids;
  ids[{100, 3}] = 10;
  ids[{100, kEncodedClauseBits}] = 11;  // not representable as a bit
  const AnnotatedGroup group = MakeGroup(300, {10, 11});
  const SenderClauseView view = SenderClauseBitsFor(group, 100, ids);
  EXPECT_EQ(view.bits, 1u << 3);
  EXPECT_TRUE(view.overflow);
}

TEST(EncodedVmacFor, PerSenderBestOverridesSharedBestHop) {
  const Roster roster({100, 200, 300});
  ClauseSetIds ids;
  ids[{100, 1}] = 10;
  AnnotatedGroup group = MakeGroup(300, {10});
  group.per_sender_best[100] = 200;
  const net::MacAddress mac = EncodedVmacFor(group, 100, roster, ids);
  EXPECT_EQ(EncodedNhIndex(mac), roster.IndexOf(200));
  EXPECT_EQ(EncodedClauseBits(mac), 1u << 1);
  // A sender without an exception rides the shared best hop.
  EXPECT_EQ(EncodedNhIndex(EncodedVmacFor(group, 200, roster, ids)),
            roster.IndexOf(300));
}

TEST(EncodedVmacFor, UnresolvableExceptionFallsBackToBestHop) {
  // Mirrors the legacy composer: an exception hop that is not (or no
  // longer) a participant is skipped and the shared default carries the
  // traffic.
  const Roster roster({100, 300});
  AnnotatedGroup group = MakeGroup(300, {});
  group.per_sender_best[100] = 999;  // not in the roster
  EXPECT_EQ(EncodedNhIndex(EncodedVmacFor(group, 100, roster, {})),
            roster.IndexOf(300));
}

TEST(EncodedVmacFor, NothingResolvableEncodesIndexZero) {
  const Roster roster({100});
  const AnnotatedGroup group = MakeGroup(0, {});
  EXPECT_EQ(EncodedNhIndex(EncodedVmacFor(group, 100, roster, {})), 0u);
}

// Runtime-level: with more than 64 participants announcing a shared prefix,
// the group's reachability bitmap must span multiple words and the roster
// must number every participant.
TEST(ReachIntegration, BitmapSpansWordsPast64Participants) {
  constexpr int kParticipants = 70;
  SdxRuntime runtime;
  const net::IPv4Prefix shared(net::IPv4Address(10, 200, 0, 0), 16);
  for (int i = 0; i < kParticipants; ++i) {
    runtime.AddParticipant(101 + i, 1);
  }
  for (int i = 0; i < kParticipants; ++i) {
    runtime.AnnouncePrefix(101 + i, shared, {bgp::AsNumber(101 + i), 65000});
  }
  OutboundClause clause;
  clause.match = policy::Predicate::DstPort(80);
  clause.to = 102;
  runtime.SetOutboundPolicy(101, {clause});
  runtime.FullCompile();

  EXPECT_EQ(runtime.roster().size(), std::size_t{kParticipants});
  const AnnotatedGroup* group = runtime.groups().FindByPrefix(shared);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(group->reach.Count(), std::size_t{kParticipants});
  EXPECT_GE(group->reach.words().size(), 2u);
  EXPECT_TRUE(group->reach.Test(runtime.roster().IndexOf(101)));
  EXPECT_TRUE(group->reach.Test(runtime.roster().IndexOf(101 + 69)));
}

}  // namespace
}  // namespace sdx::core
