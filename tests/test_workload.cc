#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "workload/policy_gen.h"
#include "workload/topology_gen.h"
#include "workload/traffic_gen.h"
#include "workload/update_gen.h"

namespace sdx::workload {
namespace {

TopologyParams SmallTopology(int participants = 50, int prefixes = 1000,
                             std::uint32_t seed = 5) {
  TopologyParams p;
  p.participants = participants;
  p.total_prefixes = prefixes;
  p.seed = seed;
  return p;
}

TEST(TopologyGenerator, GeneratesRequestedShape) {
  IxpScenario scenario = TopologyGenerator(SmallTopology()).Generate();
  EXPECT_EQ(scenario.members.size(), 50u);
  EXPECT_EQ(scenario.prefixes.size(), 1000u);
  // Every prefix has at least one announcer.
  std::set<net::IPv4Prefix> announced;
  for (const Member& member : scenario.members) {
    announced.insert(member.announced.begin(), member.announced.end());
  }
  EXPECT_EQ(announced.size(), 1000u);
}

TEST(TopologyGenerator, DeterministicInSeed) {
  IxpScenario a = TopologyGenerator(SmallTopology()).Generate();
  IxpScenario b = TopologyGenerator(SmallTopology()).Generate();
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].as, b.members[i].as);
    EXPECT_EQ(a.members[i].announced, b.members[i].announced);
  }
  IxpScenario c = TopologyGenerator(SmallTopology(50, 1000, 6)).Generate();
  bool any_difference = false;
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    if (a.members[i].announced != c.members[i].announced) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(TopologyGenerator, AnnouncementsAreHeavyTailed) {
  // §6.1: ~1% of ASes announce >50% of prefixes; 90% announce <1% each...
  // at our synthetic scale, check that the top 5% of members carries the
  // majority of announcement slots and the median member carries few.
  IxpScenario scenario =
      TopologyGenerator(SmallTopology(200, 10000)).Generate();
  std::vector<std::size_t> counts;
  std::size_t total = 0;
  for (const Member& member : scenario.members) {
    counts.push_back(member.announced.size());
    total += member.announced.size();
  }
  std::sort(counts.rbegin(), counts.rend());
  std::size_t top5 = 0;
  for (std::size_t i = 0; i < counts.size() / 20; ++i) top5 += counts[i];
  EXPECT_GT(static_cast<double>(top5) / static_cast<double>(total), 0.5);
  EXPECT_LT(static_cast<double>(counts[counts.size() / 2]) /
                static_cast<double>(total),
            0.01);
}

TEST(TopologyGenerator, PrefixNumberIsDenseAndDisjoint) {
  auto a = TopologyGenerator::PrefixNumber(0);
  auto b = TopologyGenerator::PrefixNumber(1);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_EQ(a.length(), 24);
}

TEST(PolicyGenerator, AssignsPoliciesPerPaperMix) {
  IxpScenario scenario =
      TopologyGenerator(SmallTopology(100, 2000)).Generate();
  GeneratedPolicies policies = PolicyGenerator(PolicyParams{}).Generate(scenario);

  EXPECT_GT(policies.participants_with_policies(), 0u);
  EXPECT_GT(policies.outbound_clause_count(), 0u);
  EXPECT_GT(policies.inbound_clause_count(), 0u);

  // Only a minority of participants install policies (§6.1: 15% / 5% / 5%
  // of their categories).
  EXPECT_LT(policies.participants_with_policies(), scenario.members.size() / 2);

  // Eyeballs never install outbound policies.
  std::map<bgp::AsNumber, Category> category;
  for (const Member& member : scenario.members) {
    category[member.as] = member.category;
  }
  for (const auto& [as, clauses] : policies.outbound) {
    if (clauses.empty()) continue;
    EXPECT_NE(category[as], Category::kEyeball) << "AS" << as;
  }
}

TEST(PolicyGenerator, OutboundTargetsAreRealParticipants) {
  IxpScenario scenario =
      TopologyGenerator(SmallTopology(100, 2000)).Generate();
  GeneratedPolicies policies = PolicyGenerator(PolicyParams{}).Generate(scenario);
  std::set<bgp::AsNumber> members;
  for (const Member& member : scenario.members) members.insert(member.as);
  for (const auto& [as, clauses] : policies.outbound) {
    for (const auto& clause : clauses) {
      EXPECT_TRUE(members.contains(clause.to));
      EXPECT_NE(clause.to, as);
    }
  }
}

TEST(PolicyGenerator, InstallIntoRuntimeCompiles) {
  IxpScenario scenario = TopologyGenerator(SmallTopology(20, 200)).Generate();
  GeneratedPolicies policies = PolicyGenerator(PolicyParams{}).Generate(scenario);
  core::SdxRuntime runtime;
  Install(runtime, scenario, policies);
  auto stats = runtime.FullCompile();
  EXPECT_GT(stats.flow_rule_count, 0u);
  EXPECT_GT(stats.prefix_group_count, 0u);
}

TEST(UpdateGenerator, RespectsTotalsAndStability) {
  auto params = UpdateStreamParams::Small(2000, 5000);
  params.fraction_prefixes_updated = 0.12;
  params.duration_seconds = 1e9;  // let the count bound terminate it
  UpdateStream stream = UpdateGenerator(params).Generate();
  EXPECT_EQ(stream.updates.size(), 5000u);
  // Only the unstable subset is ever updated.
  const double fraction = stream.FractionPrefixesUpdated();
  EXPECT_LE(fraction, 0.125);
  EXPECT_GT(fraction, 0.02);
}

TEST(UpdateGenerator, UpdatesAreTimeOrdered) {
  auto params = UpdateStreamParams::Small(500, 2000);
  params.duration_seconds = 1e9;
  UpdateStream stream = UpdateGenerator(params).Generate();
  for (std::size_t i = 1; i < stream.updates.size(); ++i) {
    EXPECT_LE(bgp::UpdateTime(stream.updates[i - 1]),
              bgp::UpdateTime(stream.updates[i]));
  }
}

TEST(UpdateGenerator, BurstStatisticsMatchSection432) {
  auto params = UpdateStreamParams::Small(5000, 20000);
  params.duration_seconds = 1e9;
  UpdateStream stream = UpdateGenerator(params).Generate();
  ASSERT_GT(stream.bursts.size(), 100u);
  // 75% of bursts affect no more than 3 prefixes.
  EXPECT_LE(stream.BurstSizePercentile(0.75), 3u);
  // Inter-arrival: >= 10 s in 75% of cases (25th percentile >= ~10 s is
  // the same statement inverted); half the time over a minute.
  EXPECT_GE(stream.InterArrivalPercentile(0.25), 8.0);
  EXPECT_GE(stream.InterArrivalPercentile(0.5), 55.0);
}

TEST(UpdateGenerator, GenerateForUsesScenarioAnnouncers) {
  IxpScenario scenario = TopologyGenerator(SmallTopology(20, 300)).Generate();
  auto params = UpdateStreamParams::Small(300, 1000);
  params.duration_seconds = 1e9;
  UpdateStream stream = UpdateGenerator(params).GenerateFor(scenario);
  std::set<bgp::AsNumber> members;
  for (const Member& member : scenario.members) members.insert(member.as);
  std::set<net::IPv4Prefix> prefixes(scenario.prefixes.begin(),
                                     scenario.prefixes.end());
  for (const auto& update : stream.updates) {
    EXPECT_TRUE(members.contains(bgp::UpdateFrom(update)));
    EXPECT_TRUE(prefixes.contains(bgp::UpdatePrefix(update)));
  }
}

TEST(TrafficGen, ClientFlowsVaryEndpoints) {
  auto flows = ClientFlows(100, net::IPv4Address(10, 0, 0, 1),
                           net::IPv4Address(54, 230, 1, 9), 3, 5001);
  ASSERT_EQ(flows.size(), 3u);
  std::set<std::uint32_t> srcs;
  std::set<std::uint16_t> ports;
  for (const Flow& flow : flows) {
    srcs.insert(flow.header.src_ip.value());
    ports.insert(flow.header.src_port);
    EXPECT_EQ(flow.header.proto, net::kProtoUdp);
    EXPECT_EQ(flow.rate_mbps, 1.0);
    EXPECT_TRUE(flow.ActiveAt(100.0));
  }
  EXPECT_EQ(srcs.size(), 3u);
  EXPECT_EQ(ports.size(), 3u);
}

TEST(TrafficGen, FlowActivityWindow) {
  Flow flow = UdpFlow(100, net::IPv4Address(1, 1, 1, 1),
                      net::IPv4Address(2, 2, 2, 2), 1, 2);
  flow.start_s = 10;
  flow.end_s = 20;
  EXPECT_FALSE(flow.ActiveAt(9.9));
  EXPECT_TRUE(flow.ActiveAt(10.0));
  EXPECT_TRUE(flow.ActiveAt(19.9));
  EXPECT_FALSE(flow.ActiveAt(20.0));
}

}  // namespace
}  // namespace sdx::workload
