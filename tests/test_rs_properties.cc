// Route-server property tests: bulk loading must be equivalent to
// incremental processing, and the decision process must agree with a
// brute-force reference under random update storms.
#include <gtest/gtest.h>

#include <random>

#include "rs/route_server.h"

namespace sdx::rs {
namespace {

net::IPv4Prefix P(int i) {
  return net::IPv4Prefix(
      net::IPv4Address(10, static_cast<uint8_t>(i >> 8),
                       static_cast<uint8_t>(i & 0xFF), 0),
      24);
}

struct StormParams {
  std::uint32_t seed;
  int participants;
  int prefixes;
  int updates;
};

std::vector<bgp::BgpUpdate> RandomUpdates(const StormParams& params) {
  std::mt19937 rng(params.seed);
  std::vector<bgp::BgpUpdate> out;
  for (int k = 0; k < params.updates; ++k) {
    const bgp::AsNumber from = 100 + rng() % params.participants;
    const net::IPv4Prefix prefix = P(static_cast<int>(rng()) %
                                     params.prefixes);
    if (rng() % 4 == 0) {
      bgp::Withdrawal withdrawal;
      withdrawal.from_as = from;
      withdrawal.prefix = prefix;
      out.emplace_back(withdrawal);
    } else {
      bgp::Announcement announcement;
      announcement.from_as = from;
      announcement.route.prefix = prefix;
      announcement.route.as_path = {from,
                                    static_cast<bgp::AsNumber>(
                                        64500 + rng() % 50)};
      if (rng() % 2) {
        announcement.route.as_path.push_back(64000 + rng() % 20);
      }
      announcement.route.local_pref = 100 + rng() % 3;
      announcement.route.med = rng() % 4;
      announcement.route.next_hop =
          net::IPv4Address(0xC0A80000u | (from & 0xFFFF));
      out.emplace_back(announcement);
    }
  }
  return out;
}

class RsStorm : public ::testing::TestWithParam<StormParams> {};

TEST_P(RsStorm, BulkLoadEquivalentToIncremental) {
  const StormParams params = GetParam();
  auto updates = RandomUpdates(params);

  RouteServer incremental, bulk;
  for (int i = 0; i < params.participants; ++i) {
    incremental.RegisterParticipant(100 + i,
                                    net::IPv4Address(1, 0, 0, 1 + i));
    bulk.RegisterParticipant(100 + i, net::IPv4Address(1, 0, 0, 1 + i));
  }
  for (const auto& update : updates) incremental.HandleUpdate(update);

  bulk.BeginBulkLoad();
  for (const auto& update : updates) bulk.HandleUpdate(update);
  bulk.EndBulkLoad();

  for (int receiver = 0; receiver < params.participants; ++receiver) {
    for (int p = 0; p < params.prefixes; ++p) {
      const auto* a = incremental.BestRoute(100 + receiver, P(p));
      const auto* b = bulk.BestRoute(100 + receiver, P(p));
      ASSERT_EQ(a == nullptr, b == nullptr)
          << "receiver " << 100 + receiver << " prefix " << P(p);
      if (a != nullptr) {
        EXPECT_EQ(*a, *b) << "receiver " << 100 + receiver << " prefix "
                          << P(p);
      }
    }
  }
}

TEST_P(RsStorm, BestRouteAgreesWithBruteForce) {
  const StormParams params = GetParam();
  auto updates = RandomUpdates(params);

  RouteServer server;
  for (int i = 0; i < params.participants; ++i) {
    server.RegisterParticipant(100 + i, net::IPv4Address(1, 0, 0, 1 + i));
  }
  // A brute-force shadow RIB: last route per (announcer, prefix).
  std::map<std::pair<bgp::AsNumber, net::IPv4Prefix>,
           std::optional<bgp::BgpRoute>>
      shadow;
  for (const auto& update : updates) {
    server.HandleUpdate(update);
    const auto from = bgp::UpdateFrom(update);
    const auto prefix = bgp::UpdatePrefix(update);
    if (const auto* a = std::get_if<bgp::Announcement>(&update)) {
      bgp::BgpRoute route = a->route;
      route.peer_as = from;
      route.peer_router_id =
          net::IPv4Address(1, 0, 0, 1 + (from - 100));
      shadow[{from, prefix}] = route;
    } else {
      shadow[{from, prefix}] = std::nullopt;
    }
  }

  for (int receiver = 0; receiver < params.participants; ++receiver) {
    const bgp::AsNumber receiver_as = 100 + receiver;
    for (int p = 0; p < params.prefixes; ++p) {
      const bgp::BgpRoute* expected = nullptr;
      for (const auto& [key, route] : shadow) {
        if (!route || key.second != P(p)) continue;
        if (key.first == receiver_as) continue;
        if (route->PathContains(receiver_as)) continue;
        if (expected == nullptr ||
            bgp::CompareRoutes(*route, *expected) < 0) {
          expected = &*route;
        }
      }
      const auto* got = server.BestRoute(receiver_as, P(p));
      ASSERT_EQ(expected == nullptr, got == nullptr)
          << "receiver " << receiver_as << " prefix " << P(p);
      if (expected != nullptr) {
        EXPECT_EQ(*expected, *got);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Storms, RsStorm,
    ::testing::Values(StormParams{1, 4, 8, 100},
                      StormParams{2, 8, 16, 400},
                      StormParams{3, 12, 30, 1000},
                      StormParams{4, 20, 10, 1500}),
    [](const ::testing::TestParamInfo<StormParams>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace sdx::rs
