#include "rs/route_server.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sdx::rs {
namespace {

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

bgp::BgpUpdate Announce(AsNumber from, const char* prefix,
                        std::vector<bgp::AsNumber> path = {},
                        std::uint32_t local_pref = 100) {
  bgp::Announcement a;
  a.from_as = from;
  a.route.prefix = Pfx(prefix);
  a.route.as_path = path.empty() ? std::vector<bgp::AsNumber>{from}
                                 : std::move(path);
  a.route.local_pref = local_pref;
  a.route.next_hop = net::IPv4Address(192, 168, 0, static_cast<uint8_t>(from));
  return bgp::BgpUpdate{a};
}

bgp::BgpUpdate Withdraw(AsNumber from, const char* prefix) {
  bgp::Withdrawal w;
  w.from_as = from;
  w.prefix = Pfx(prefix);
  return bgp::BgpUpdate{w};
}

class RouteServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.RegisterParticipant(100, net::IPv4Address(1, 0, 0, 1));
    server_.RegisterParticipant(200, net::IPv4Address(2, 0, 0, 1));
    server_.RegisterParticipant(300, net::IPv4Address(3, 0, 0, 1));
  }
  RouteServer server_;
};

TEST_F(RouteServerTest, AnnouncementVisibleToOtherParticipants) {
  auto changes = server_.HandleUpdate(Announce(100, "10.0.0.0/8"));
  EXPECT_EQ(changes.size(), 2u);  // 200 and 300 gained a best route
  EXPECT_NE(server_.BestRoute(200, Pfx("10.0.0.0/8")), nullptr);
  EXPECT_NE(server_.BestRoute(300, Pfx("10.0.0.0/8")), nullptr);
  // Never reflected back to the announcer.
  EXPECT_EQ(server_.BestRoute(100, Pfx("10.0.0.0/8")), nullptr);
}

TEST_F(RouteServerTest, DuplicateAnnouncementIsNoChange) {
  server_.HandleUpdate(Announce(100, "10.0.0.0/8"));
  auto changes = server_.HandleUpdate(Announce(100, "10.0.0.0/8"));
  EXPECT_TRUE(changes.empty());
}

TEST_F(RouteServerTest, DecisionProcessPerReceiver) {
  server_.HandleUpdate(Announce(100, "10.0.0.0/8", {100, 900}));
  server_.HandleUpdate(Announce(200, "10.0.0.0/8", {200}));
  // 300 sees both candidates; shorter path via 200 wins.
  const auto* best = server_.BestRoute(300, Pfx("10.0.0.0/8"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->peer_as, 200u);
  // 200 only sees 100's route.
  best = server_.BestRoute(200, Pfx("10.0.0.0/8"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->peer_as, 100u);
}

TEST_F(RouteServerTest, WithdrawalFallsBackToNextBest) {
  server_.HandleUpdate(Announce(100, "10.0.0.0/8", {100, 900}));
  server_.HandleUpdate(Announce(200, "10.0.0.0/8", {200}));
  auto changes = server_.HandleUpdate(Withdraw(200, "10.0.0.0/8"));
  // 300 falls back to 100's route; 100 loses its only route.
  const auto* best = server_.BestRoute(300, Pfx("10.0.0.0/8"));
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->peer_as, 100u);
  EXPECT_EQ(server_.BestRoute(100, Pfx("10.0.0.0/8")), nullptr);
  EXPECT_GE(changes.size(), 2u);
}

TEST_F(RouteServerTest, ExportDenyHidesRoute) {
  // Figure 1b: B (200) does not export p4 to A (100).
  server_.DenyExport(200, 100, Pfx("10.4.0.0/16"));
  server_.HandleUpdate(Announce(200, "10.4.0.0/16"));
  EXPECT_EQ(server_.BestRoute(100, Pfx("10.4.0.0/16")), nullptr);
  EXPECT_NE(server_.BestRoute(300, Pfx("10.4.0.0/16")), nullptr);

  auto reachable = server_.ReachableVia(100, Pfx("10.4.0.0/16"));
  EXPECT_TRUE(reachable.empty());
  reachable = server_.ReachableVia(300, Pfx("10.4.0.0/16"));
  ASSERT_EQ(reachable.size(), 1u);
  EXPECT_EQ(reachable[0], 200u);
}

TEST_F(RouteServerTest, AllowExportRestoresRoute) {
  server_.DenyExport(200, 100, Pfx("10.4.0.0/16"));
  server_.HandleUpdate(Announce(200, "10.4.0.0/16"));
  server_.AllowExport(200, 100, Pfx("10.4.0.0/16"));
  EXPECT_NE(server_.BestRoute(100, Pfx("10.4.0.0/16")), nullptr);
}

TEST_F(RouteServerTest, ReachableViaListsAllFeasibleNextHops) {
  // Both 100 and 200 announce the prefix; 300 may use either, regardless of
  // which is best (§3.2: "all feasible routes").
  server_.HandleUpdate(Announce(100, "10.0.0.0/8", {100, 900}));
  server_.HandleUpdate(Announce(200, "10.0.0.0/8", {200}));
  auto reachable = server_.ReachableVia(300, Pfx("10.0.0.0/8"));
  std::sort(reachable.begin(), reachable.end());
  EXPECT_EQ(reachable, (std::vector<AsNumber>{100, 200}));
}

TEST_F(RouteServerTest, PrefixesReachableViaRespectsExportPolicy) {
  server_.HandleUpdate(Announce(200, "10.1.0.0/16"));
  server_.HandleUpdate(Announce(200, "10.2.0.0/16"));
  server_.DenyExport(200, 100, Pfx("10.2.0.0/16"));
  auto prefixes = server_.PrefixesReachableVia(100, 200);
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0], Pfx("10.1.0.0/16"));
}

TEST_F(RouteServerTest, LoopedPathsExcluded) {
  // A route whose AS path already contains the receiver is not usable.
  server_.HandleUpdate(Announce(100, "10.0.0.0/8", {100, 300, 900}));
  EXPECT_EQ(server_.BestRoute(300, Pfx("10.0.0.0/8")), nullptr);
  EXPECT_NE(server_.BestRoute(200, Pfx("10.0.0.0/8")), nullptr);
}

TEST_F(RouteServerTest, BestRouteChangeCallbackFires) {
  std::vector<BestRouteChange> seen;
  server_.OnBestRouteChange(
      [&](const BestRouteChange& change) { seen.push_back(change); });
  server_.HandleUpdate(Announce(100, "10.0.0.0/8"));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_FALSE(seen[0].old_best);
  ASSERT_TRUE(seen[0].new_best);
  EXPECT_EQ(seen[0].new_best->peer_as, 100u);
}

TEST_F(RouteServerTest, OriginationRequiresOwnership) {
  EXPECT_FALSE(server_.Announce(100, Pfx("74.125.1.0/24"),
                                net::IPv4Address(9, 9, 9, 9)));
  server_.RegisterOwnership(100, Pfx("74.125.1.0/24"));
  EXPECT_TRUE(server_.Announce(100, Pfx("74.125.1.0/24"),
                               net::IPv4Address(9, 9, 9, 9)));
  EXPECT_NE(server_.BestRoute(200, Pfx("74.125.1.0/24")), nullptr);
  EXPECT_TRUE(server_.WithdrawOrigination(100, Pfx("74.125.1.0/24")));
  EXPECT_EQ(server_.BestRoute(200, Pfx("74.125.1.0/24")), nullptr);
}

TEST_F(RouteServerTest, UpdateFromUnknownParticipantThrows) {
  EXPECT_THROW(server_.HandleUpdate(Announce(999, "10.0.0.0/8")),
               std::invalid_argument);
}

TEST_F(RouteServerTest, QueriesEnumeratePrefixes) {
  server_.HandleUpdate(Announce(100, "10.0.0.0/8"));
  server_.HandleUpdate(Announce(200, "20.0.0.0/8"));
  EXPECT_EQ(server_.AllPrefixes().size(), 2u);
  EXPECT_EQ(server_.PrefixesAnnouncedBy(100).size(), 1u);
  EXPECT_EQ(server_.PrefixesAnnouncedBy(300).size(), 0u);
  EXPECT_EQ(server_.updates_processed(), 2u);
}

}  // namespace
}  // namespace sdx::rs
