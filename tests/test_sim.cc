#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "sim/flow_sim.h"

namespace sdx::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(3.0, [&] { order.push_back(3); });
  queue.ScheduleAt(1.0, [&] { order.push_back(1); });
  queue.ScheduleAt(2.0, [&] { order.push_back(2); });
  while (queue.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 3.0);
  EXPECT_EQ(queue.executed(), 3u);
}

TEST(EventQueue, StableForEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  while (queue.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue queue;
  int ran = 0;
  queue.ScheduleAt(1.0, [&] { ++ran; });
  queue.ScheduleAt(5.0, [&] { ++ran; });
  queue.RunUntil(2.0);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.now(), 2.0);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
  EventQueue queue;
  int depth = 0;
  queue.ScheduleAt(1.0, [&] {
    ++depth;
    queue.ScheduleAfter(1.0, [&] { ++depth; });
  });
  queue.RunUntil(10.0);
  EXPECT_EQ(depth, 2);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  EventQueue queue;
  double seen = -1;
  queue.ScheduleAt(5.0, [&] {
    queue.ScheduleAt(1.0, [&] { seen = queue.now(); });
  });
  queue.RunUntil(10.0);
  EXPECT_EQ(seen, 5.0);
}

// Flow simulation over a live SDX: traffic shifts at the instant a control
// event runs (the Fig. 5a shape in miniature).
TEST(FlowSimulator, TrafficShiftsOnPolicyInstall) {
  core::SdxRuntime runtime;
  runtime.AddParticipant(100, 1);  // client ISP
  runtime.AddParticipant(200, 1);  // upstream A
  runtime.AddParticipant(300, 1);  // upstream B
  auto amazon = *net::IPv4Prefix::Parse("54.230.0.0/16");
  runtime.AnnouncePrefix(200, amazon, {200, 16509});
  runtime.AnnouncePrefix(300, amazon, {300, 64000, 16509});
  runtime.FullCompile();

  auto flows = workload::ClientFlows(100, net::IPv4Address(204, 57, 0, 1),
                                     net::IPv4Address(54, 230, 1, 9), 3, 80);
  FlowSimulator sim(runtime, flows);

  // At t=30 the client ISP installs application-specific peering: port-80
  // traffic via AS 300.
  sim.ScheduleControl(30.0, [&runtime] {
    core::OutboundClause web;
    web.match = policy::Predicate::DstPort(80);
    web.to = 300;
    runtime.SetOutboundPolicy(100, {web});
    runtime.FullCompile();
  });

  auto samples = sim.Run(60.0, 1.0);
  ASSERT_EQ(samples.size(), 60u);
  const net::PortId port_a = runtime.topology().PhysicalPortOf(200, 0).id;
  const net::PortId port_b = runtime.topology().PhysicalPortOf(300, 0).id;

  // Before the event: all 3 Mbps on the default path (AS 200, the shorter
  // AS path).
  auto at = [&](std::size_t t, net::PortId port) {
    auto it = samples[t].mbps_by_port.find(port);
    return it == samples[t].mbps_by_port.end() ? 0.0 : it->second;
  };
  EXPECT_DOUBLE_EQ(at(10, port_a), 3.0);
  EXPECT_DOUBLE_EQ(at(10, port_b), 0.0);
  // After: all on AS 300.
  EXPECT_DOUBLE_EQ(at(45, port_a), 0.0);
  EXPECT_DOUBLE_EQ(at(45, port_b), 3.0);
  // The shift happens exactly at t=30.
  EXPECT_DOUBLE_EQ(at(29, port_a), 3.0);
  EXPECT_DOUBLE_EQ(at(30, port_b), 3.0);
}

TEST(FlowSimulator, DroppedTrafficAccounted) {
  core::SdxRuntime runtime;
  runtime.AddParticipant(100, 1);
  runtime.AddParticipant(200, 1);
  runtime.FullCompile();  // no routes at all
  auto flows = workload::ClientFlows(100, net::IPv4Address(204, 57, 0, 1),
                                     net::IPv4Address(54, 230, 1, 9), 2, 80);
  FlowSimulator sim(runtime, flows);
  auto samples = sim.Run(3.0, 1.0);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].dropped_mbps, 2.0);
  EXPECT_TRUE(samples[0].mbps_by_port.empty());
}

TEST(FlowSimulator, FlowWindowsRespected) {
  core::SdxRuntime runtime;
  runtime.AddParticipant(100, 1);
  runtime.AddParticipant(200, 1);
  auto p = *net::IPv4Prefix::Parse("54.230.0.0/16");
  runtime.AnnouncePrefix(200, p);
  runtime.FullCompile();

  auto flows = workload::ClientFlows(100, net::IPv4Address(204, 57, 0, 1),
                                     net::IPv4Address(54, 230, 1, 9), 1, 80);
  flows[0].start_s = 5.0;
  flows[0].end_s = 8.0;
  FlowSimulator sim(runtime, flows);
  auto samples = sim.Run(10.0, 1.0);
  const net::PortId port = runtime.topology().PhysicalPortOf(200, 0).id;
  for (std::size_t t = 0; t < samples.size(); ++t) {
    const bool active = t >= 5 && t < 8;
    auto it = samples[t].mbps_by_port.find(port);
    const double mbps =
        it == samples[t].mbps_by_port.end() ? 0.0 : it->second;
    EXPECT_DOUBLE_EQ(mbps, active ? 1.0 : 0.0) << "t=" << t;
  }
}

}  // namespace
}  // namespace sdx::sim
