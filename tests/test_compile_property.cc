// Differential property tests: the compiled classifier must agree with the
// direct AST interpreter on random policies and random packets (DESIGN.md
// invariant 5). This is the strongest correctness check on the compiler —
// any bug in composition, pull-back, or negation shows up here.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "policy/compile.h"

namespace sdx::policy {
namespace {

using dataplane::Rewrites;
using net::IPv4Address;
using net::IPv4Prefix;
using net::PacketHeader;

class RandomPolicyGen {
 public:
  explicit RandomPolicyGen(std::uint32_t seed) : rng_(seed) {}

  Predicate RandomPredicate(int depth) {
    if (depth <= 0 || rng_() % 3 == 0) return RandomLeafPredicate();
    switch (rng_() % 3) {
      case 0:
        return RandomPredicate(depth - 1) && RandomPredicate(depth - 1);
      case 1:
        return RandomPredicate(depth - 1) || RandomPredicate(depth - 1);
      default:
        return !RandomPredicate(depth - 1);
    }
  }

  Policy RandomPolicy(int depth) {
    if (depth <= 0 || rng_() % 4 == 0) return RandomLeafPolicy();
    switch (rng_() % 3) {
      case 0:
        return RandomPolicy(depth - 1) + RandomPolicy(depth - 1);
      case 1:
        return RandomPolicy(depth - 1) >> RandomPolicy(depth - 1);
      default:
        return Policy::If(RandomPredicate(depth - 1), RandomPolicy(depth - 1),
                          RandomPolicy(depth - 1));
    }
  }

  PacketHeader RandomPacket() {
    PacketHeader h;
    h.in_port = rng_() % kPorts;
    h.src_mac = net::MacAddress(rng_() % 4);
    h.dst_mac = net::MacAddress(rng_() % 4);
    h.src_ip = IPv4Address(RandomAddressValue());
    h.dst_ip = IPv4Address(RandomAddressValue());
    h.proto = rng_() % 2 ? net::kProtoTcp : net::kProtoUdp;
    h.src_port = static_cast<std::uint16_t>(rng_() % 3);
    h.dst_port = RandomPort();
    return h;
  }

 private:
  static constexpr int kPorts = 5;

  // Addresses drawn from a few /8s so prefix matches hit often.
  std::uint32_t RandomAddressValue() {
    const std::uint32_t nets[] = {10u << 24, 20u << 24, 74u << 24};
    return nets[rng_() % 3] | (rng_() & 0x00FFFFFFu);
  }

  std::uint16_t RandomPort() {
    const std::uint16_t ports[] = {80, 443, 22, 8080};
    return ports[rng_() % 4];
  }

  IPv4Prefix RandomPrefix() {
    const std::uint8_t lengths[] = {0, 1, 8, 16, 24, 32};
    return IPv4Prefix(IPv4Address(RandomAddressValue()),
                      lengths[rng_() % 6]);
  }

  Predicate RandomLeafPredicate() {
    switch (rng_() % 6) {
      case 0:
        return Predicate::InPort(rng_() % kPorts);
      case 1:
        return Predicate::DstPort(RandomPort());
      case 2:
        return Predicate::SrcIp(RandomPrefix());
      case 3:
        return Predicate::DstIp(RandomPrefix());
      case 4:
        return Predicate::Proto(rng_() % 2 ? net::kProtoTcp : net::kProtoUdp);
      default:
        return rng_() % 2 ? Predicate::True() : Predicate::False();
    }
  }

  Policy RandomLeafPolicy() {
    switch (rng_() % 5) {
      case 0:
        return Policy::Drop();
      case 1:
        return Policy::Identity();
      case 2:
        return Policy::Fwd(rng_() % kPorts);
      case 3:
        return Policy::Filter(RandomLeafPredicate());
      default: {
        Rewrites r;
        if (rng_() % 2) r.SetDstPort(RandomPort());
        if (rng_() % 2) r.SetDstIp(IPv4Address(RandomAddressValue()));
        if (rng_() % 3 == 0) r.SetSrcIp(IPv4Address(RandomAddressValue()));
        if (rng_() % 3 == 0) r.SetDstMac(net::MacAddress(rng_() % 4));
        return Policy::Mod(r);
      }
    }
  }

  std::mt19937 rng_;
};

// Sorts packet sets for order-insensitive comparison (parallel composition
// order is unspecified).
std::vector<PacketHeader> Normalize(std::vector<PacketHeader> packets) {
  std::sort(packets.begin(), packets.end(),
            [](const PacketHeader& a, const PacketHeader& b) {
              return a.ToString() < b.ToString();
            });
  return packets;
}

struct SweepParams {
  std::uint32_t seed;
  int policy_depth;
};

class CompileDifferential : public ::testing::TestWithParam<SweepParams> {};

TEST_P(CompileDifferential, ClassifierAgreesWithInterpreter) {
  const auto [seed, depth] = GetParam();
  RandomPolicyGen gen(seed);
  for (int round = 0; round < 30; ++round) {
    Policy policy = gen.RandomPolicy(depth);
    Classifier compiled = Compile(policy);
    for (int trial = 0; trial < 40; ++trial) {
      PacketHeader packet = gen.RandomPacket();
      auto expected = Normalize(policy.Eval(packet));
      auto actual = Normalize(compiled.Eval(packet));
      ASSERT_EQ(expected, actual)
          << "policy: " << policy.ToString() << "\npacket: " << packet;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompileDifferential,
    ::testing::Values(SweepParams{1, 1}, SweepParams{2, 2}, SweepParams{3, 2},
                      SweepParams{4, 3}, SweepParams{5, 3}, SweepParams{6, 4},
                      SweepParams{7, 4}, SweepParams{8, 5}),
    [](const ::testing::TestParamInfo<SweepParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_depth" +
             std::to_string(info.param.policy_depth);
    });

// Cached compilation must agree with uncached on random policies.
TEST(CompileDifferential, CacheDoesNotChangeSemantics) {
  RandomPolicyGen gen(99);
  CompilationCache cache;
  for (int round = 0; round < 50; ++round) {
    Policy policy = gen.RandomPolicy(3);
    Classifier cached = Compile(policy, &cache);
    Classifier uncached = Compile(policy);
    for (int trial = 0; trial < 20; ++trial) {
      PacketHeader packet = gen.RandomPacket();
      ASSERT_EQ(Normalize(cached.Eval(packet)),
                Normalize(uncached.Eval(packet)))
          << policy.ToString();
    }
  }
}

// Algebraic laws of the policy language, checked semantically on random
// policies: +/>> associativity, >> distributing over + on both sides, and
// the identity/annihilator elements.
TEST(PolicyAlgebra, AssociativityAndDistributivity) {
  RandomPolicyGen gen(4242);
  for (int round = 0; round < 60; ++round) {
    Policy a = gen.RandomPolicy(2);
    Policy b = gen.RandomPolicy(2);
    Policy c = gen.RandomPolicy(2);
    struct LawCase {
      const char* name;
      Policy lhs;
      Policy rhs;
    };
    const LawCase laws[] = {
        {"+assoc", (a + b) + c, a + (b + c)},
        {">>assoc", (a >> b) >> c, a >> (b >> c)},
        {"left-dist", a >> (b + c), (a >> b) + (a >> c)},
        {"right-dist", (a + b) >> c, (a >> c) + (b >> c)},
        {"+comm", a + b, b + a},
        {"id-left", Policy::Identity() >> a, a},
        {"drop-right", a >> Policy::Drop(), Policy::Drop()},
    };
    for (const LawCase& law : laws) {
      for (int trial = 0; trial < 15; ++trial) {
        net::PacketHeader packet = gen.RandomPacket();
        ASSERT_EQ(Normalize(law.lhs.Eval(packet)),
                  Normalize(law.rhs.Eval(packet)))
            << law.name << "\na: " << a.ToString()
            << "\nb: " << b.ToString() << "\nc: " << c.ToString();
      }
    }
  }
}

// The compiled forms obey the same laws.
TEST(PolicyAlgebra, CompiledFormsAgreeAcrossAssociations) {
  RandomPolicyGen gen(777);
  for (int round = 0; round < 40; ++round) {
    Policy a = gen.RandomPolicy(2);
    Policy b = gen.RandomPolicy(2);
    Policy c = gen.RandomPolicy(2);
    Classifier left = Compile((a + b) + c);
    Classifier right = Compile(a + (b + c));
    Classifier seq_left = Compile((a >> b) >> c);
    Classifier seq_right = Compile(a >> (b >> c));
    for (int trial = 0; trial < 15; ++trial) {
      net::PacketHeader packet = gen.RandomPacket();
      ASSERT_EQ(Normalize(left.Eval(packet)), Normalize(right.Eval(packet)));
      ASSERT_EQ(Normalize(seq_left.Eval(packet)),
                Normalize(seq_right.Eval(packet)));
    }
  }
}

// --- Classifier-algebra edge cases (DESIGN.md §8 oracle satellite) -------

// Shadow elimination under negated predicates. Negation compiles into
// permit/drop rule pairs whose drop rules are broad, so sequential
// composition of negated filters is the easiest way to produce deeply
// shadowed tails. RemoveShadowed must shrink them without changing any
// packet's fate.
TEST(ClassifierEdgeCases, ShadowEliminationUnderNegatedPredicates) {
  RandomPolicyGen gen(31337);
  for (int round = 0; round < 40; ++round) {
    Predicate p = gen.RandomPredicate(2);
    Predicate q = gen.RandomPredicate(2);
    Policy policy = Policy::Filter(!p) >> Policy::Filter(!q);
    Classifier compiled = Compile(policy);
    Classifier optimized = compiled;
    optimized.RemoveShadowed();
    ASSERT_LE(optimized.size(), compiled.size());
    for (int trial = 0; trial < 25; ++trial) {
      PacketHeader packet = gen.RandomPacket();
      ASSERT_EQ(Normalize(policy.Eval(packet)),
                Normalize(optimized.Eval(packet)))
          << "p: " << p.ToString() << "\nq: " << q.ToString();
    }
  }

  // Double negation over a total filter: !(!False) passes everything, so
  // a sequentially composed narrow filter decides every packet and the
  // optimized classifier must stay equivalent to the narrow filter alone.
  Policy doubled =
      Policy::Filter(!!Predicate::True()) >>
      Policy::Filter(Predicate::DstPort(80));
  Classifier optimized = Compile(doubled);
  optimized.RemoveShadowed();
  Classifier narrow = Compile(Policy::Filter(Predicate::DstPort(80)));
  RandomPolicyGen probe(31338);
  for (int trial = 0; trial < 50; ++trial) {
    PacketHeader packet = probe.RandomPacket();
    ASSERT_EQ(Normalize(optimized.Eval(packet)),
              Normalize(narrow.Eval(packet)));
  }
}

// If() with overlapping branches: both branches are total (match every
// packet), so only the predicate may decide which branch acts — any leak
// of the untaken branch's rules shows up as a wrong or duplicated output.
TEST(ClassifierEdgeCases, IfWithOverlappingBranches) {
  RandomPolicyGen gen(60601);
  for (int round = 0; round < 40; ++round) {
    Predicate p = gen.RandomPredicate(2);
    Rewrites r;
    r.SetDstIp(IPv4Address(10, 0, 0, 1));
    // Both branches match everything and forward somewhere; the then-branch
    // also rewrites, so taking the wrong branch changes the output header,
    // not just the count.
    Policy then_branch = Policy::Mod(r) >> Policy::Fwd(1);
    Policy else_branch = Policy::Fwd(2);
    Policy policy = Policy::If(p, then_branch, else_branch);
    Classifier compiled = Compile(policy);
    for (int trial = 0; trial < 25; ++trial) {
      PacketHeader packet = gen.RandomPacket();
      const auto expected = Normalize(policy.Eval(packet));
      ASSERT_EQ(expected.size(), 1u) << p.ToString();
      ASSERT_EQ(expected, Normalize(compiled.Eval(packet)))
          << "predicate: " << p.ToString();
    }
  }

  // Branches that overlap *with the predicate* as well: then-branch
  // re-filters on the same predicate (redundant), else-branch filters on
  // it (contradictory — must drop).
  for (int round = 0; round < 40; ++round) {
    Predicate p = gen.RandomPredicate(2);
    Policy policy = Policy::If(p, Policy::Filter(p) >> Policy::Fwd(1),
                               Policy::Filter(p) >> Policy::Fwd(2));
    Classifier compiled = Compile(policy);
    for (int trial = 0; trial < 25; ++trial) {
      PacketHeader packet = gen.RandomPacket();
      ASSERT_EQ(Normalize(policy.Eval(packet)),
                Normalize(compiled.Eval(packet)))
          << "predicate: " << p.ToString();
    }
  }
}

// Empty and drop-only policies: every algebraic route to "drop everything"
// must compile to a classifier that emits nothing, and composing with such
// a policy must annihilate.
TEST(ClassifierEdgeCases, EmptyAndDropOnlyPolicies) {
  RandomPolicyGen gen(90210);
  const Policy drops[] = {
      Policy::Drop(),
      Policy::Filter(Predicate::False()),
      Policy::Filter(!Predicate::True()),
      Policy::Drop() + Policy::Drop(),
      Policy::Drop() >> gen.RandomPolicy(2),
      gen.RandomPolicy(2) >> Policy::Drop(),
      Policy::If(gen.RandomPredicate(2), Policy::Drop(), Policy::Drop()),
  };
  for (const Policy& policy : drops) {
    Classifier compiled = Compile(policy);
    for (int trial = 0; trial < 25; ++trial) {
      PacketHeader packet = gen.RandomPacket();
      ASSERT_TRUE(policy.Eval(packet).empty()) << policy.ToString();
      ASSERT_TRUE(compiled.Eval(packet).empty()) << policy.ToString();
    }
    // Structurally: no rule of a drop-only classifier carries actions.
    Classifier optimized = compiled;
    optimized.RemoveShadowed();
    for (const Rule& rule : optimized.rules()) {
      EXPECT_TRUE(rule.actions.empty()) << policy.ToString();
    }
  }

  // Mod with no rewrites is the identity, not a drop.
  Policy noop = Policy::Mod(Rewrites{});
  Classifier compiled = Compile(noop);
  for (int trial = 0; trial < 25; ++trial) {
    PacketHeader packet = gen.RandomPacket();
    ASSERT_EQ(Normalize(noop.Eval(packet)), Normalize(compiled.Eval(packet)));
    ASSERT_EQ(compiled.Eval(packet).size(), 1u);
  }
}

// RemoveShadowed must preserve semantics.
TEST(CompileDifferential, ShadowRemovalPreservesSemantics) {
  RandomPolicyGen gen(1234);
  for (int round = 0; round < 50; ++round) {
    Policy policy = gen.RandomPolicy(3);
    Classifier compiled = Compile(policy);
    Classifier optimized = compiled;
    optimized.RemoveShadowed();
    for (int trial = 0; trial < 20; ++trial) {
      net::PacketHeader packet = gen.RandomPacket();
      ASSERT_EQ(Normalize(compiled.Eval(packet)),
                Normalize(optimized.Eval(packet)))
          << policy.ToString();
    }
  }
}

}  // namespace
}  // namespace sdx::policy
