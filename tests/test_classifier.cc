#include "policy/classifier.h"

#include <gtest/gtest.h>

namespace sdx::policy {
namespace {

using dataplane::Action;
using dataplane::Rewrites;
using net::FieldMatch;
using net::PacketHeader;

PacketHeader WebPacket() {
  PacketHeader h;
  h.in_port = 1;
  h.dst_port = 80;
  return h;
}

TEST(Classifier, FactoriesAreTotal) {
  EXPECT_EQ(Classifier::DropAll().size(), 1u);
  EXPECT_EQ(Classifier::PassAll().size(), 1u);
  EXPECT_EQ(Classifier::Permit(FieldMatch::DstPort(80)).size(), 2u);
  EXPECT_EQ(Classifier::Permit(FieldMatch()).size(), 1u);  // folds to pass
}

TEST(Classifier, EvalFirstMatchWins) {
  Classifier c({
      Rule{FieldMatch::DstPort(80), {Action{{}, 2}}},
      Rule{FieldMatch(), {Action{{}, 3}}},
  });
  auto out = c.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 2u);

  PacketHeader ssh = WebPacket();
  ssh.dst_port = 22;
  out = c.Eval(ssh);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 3u);
}

TEST(Classifier, ParallelUnionsActionSets) {
  Classifier a = Classifier::Always(Action{{}, 2});
  Classifier b = Classifier::Always(Action{{}, 3});
  Classifier c = a.Parallel(b);
  auto out = c.Eval(WebPacket());
  EXPECT_EQ(out.size(), 2u);
}

TEST(Classifier, ParallelRespectsFirstMatchPerSide) {
  // Side A forwards port-80 traffic to 2, else drops; side B forwards all
  // to 3. A port-80 packet should go to both 2 and 3.
  Classifier a({
      Rule{FieldMatch::DstPort(80), {Action{{}, 2}}},
      Rule{FieldMatch(), {}},
  });
  Classifier b = Classifier::Always(Action{{}, 3});
  Classifier c = a.Parallel(b);

  auto out = c.Eval(WebPacket());
  EXPECT_EQ(out.size(), 2u);

  PacketHeader ssh = WebPacket();
  ssh.dst_port = 22;
  out = c.Eval(ssh);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 3u);
}

TEST(Classifier, ParallelDedupesIdenticalStays) {
  Classifier a = Classifier::Permit(FieldMatch::DstPort(80));
  Classifier b = Classifier::Permit(FieldMatch::InPort(1));
  Classifier c = a.Parallel(b);  // acts as OR of the two permits
  auto out = c.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);  // one stay, not two copies
  EXPECT_EQ(out[0], WebPacket());
}

TEST(Classifier, SequentialComposesRewritesAndPorts) {
  Rewrites set_port;
  set_port.SetDstPort(8080);
  Classifier first = Classifier::Always(Action{set_port, net::kNoPort});
  Classifier second({
      Rule{FieldMatch::DstPort(8080), {Action{{}, 9}}},
      Rule{FieldMatch(), {}},
  });
  Classifier c = first.Sequential(second);
  auto out = c.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_port, 8080);
  EXPECT_EQ(out[0].in_port, 9u);
}

TEST(Classifier, SequentialDropShortCircuits) {
  Classifier first = Classifier::DropAll();
  Classifier second = Classifier::Always(Action{{}, 9});
  Classifier c = first.Sequential(second);
  EXPECT_TRUE(c.Eval(WebPacket()).empty());
}

TEST(Classifier, SequentialPortMoveSatisfiesInPortMatch) {
  // fwd(7) then match(in_port=7) >> fwd(9): emulates the virtual hop.
  Classifier first = Classifier::Always(Action{{}, 7});
  Classifier second({
      Rule{FieldMatch::InPort(7), {Action{{}, 9}}},
      Rule{FieldMatch(), {}},
  });
  Classifier c = first.Sequential(second);
  auto out = c.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 9u);

  // And a mismatched in_port match yields a drop.
  Classifier mismatched({
      Rule{FieldMatch::InPort(8), {Action{{}, 9}}},
      Rule{FieldMatch(), {}},
  });
  EXPECT_TRUE(first.Sequential(mismatched).Eval(WebPacket()).empty());
}

TEST(Classifier, SequentialMulticastRoutesEachCopy) {
  // First stage multicasts to ports 7 and 8; second stage sends port-7
  // traffic to 100 and port-8 traffic to 200.
  Classifier first =
      Classifier::Always(Action{{}, 7}).Parallel(Classifier::Always(Action{{}, 8}));
  Classifier second({
      Rule{FieldMatch::InPort(7), {Action{{}, 100}}},
      Rule{FieldMatch::InPort(8), {Action{{}, 200}}},
      Rule{FieldMatch(), {}},
  });
  Classifier c = first.Sequential(second);
  auto out = c.Eval(WebPacket());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].in_port, 100u);
  EXPECT_EQ(out[1].in_port, 200u);
}

TEST(Classifier, NegateSwapsPermitAndDrop) {
  Classifier permit = Classifier::Permit(FieldMatch::DstPort(80));
  Classifier negated = permit.Negate();
  EXPECT_TRUE(negated.Eval(WebPacket()).empty());
  PacketHeader ssh = WebPacket();
  ssh.dst_port = 22;
  EXPECT_EQ(negated.Eval(ssh).size(), 1u);
}

TEST(Classifier, UnionDisjointPreservesBothBehaviors) {
  Classifier a({
      Rule{FieldMatch::InPort(1).WithDstPort(80), {Action{{}, 2}}},
      Rule{FieldMatch(), {}},
  });
  Classifier b({
      Rule{FieldMatch::InPort(5), {Action{{}, 6}}},
      Rule{FieldMatch(), {}},
  });
  Classifier c = a.UnionDisjoint(b);
  auto out = c.Eval(WebPacket());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 2u);
  PacketHeader other;
  other.in_port = 5;
  out = c.Eval(other);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].in_port, 6u);
  PacketHeader third;
  third.in_port = 9;
  EXPECT_TRUE(c.Eval(third).empty());
}

TEST(Classifier, DedupMatchesKeepsFirst) {
  Classifier c({
      Rule{FieldMatch::DstPort(80), {Action{{}, 2}}},
      Rule{FieldMatch::DstPort(80), {Action{{}, 3}}},
      Rule{FieldMatch(), {}},
  });
  c.DedupMatches();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.rules()[0].actions[0].out_port, 2u);
}

TEST(Classifier, RemoveShadowedDropsDeadRules) {
  Classifier c({
      Rule{FieldMatch::DstPort(80), {Action{{}, 2}}},
      Rule{FieldMatch::DstPort(80).WithInPort(1), {Action{{}, 3}}},  // dead
      Rule{FieldMatch(), {}},
  });
  c.RemoveShadowed();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.rules()[0].actions[0].out_port, 2u);
  EXPECT_TRUE(c.rules()[1].match.IsWildcard());
}

TEST(Classifier, RemoveShadowedMergesRedundantTail) {
  Classifier c({
      Rule{FieldMatch::DstPort(80), {Action{{}, 2}}},
      Rule{FieldMatch::DstPort(22), {}},  // same as final wildcard drop
      Rule{FieldMatch(), {}},
  });
  c.RemoveShadowed();
  EXPECT_EQ(c.size(), 2u);
}

TEST(Classifier, ToFlowRulesPreservesOrderViaPriorities) {
  Classifier c({
      Rule{FieldMatch::DstPort(80), {Action{{}, 2}}},
      Rule{FieldMatch(), {}},
  });
  auto rules = c.ToFlowRules(1000, /*cookie=*/42);
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_GT(rules[0].priority, rules[1].priority);
  EXPECT_EQ(rules[0].cookie, dataplane::Cookie{42});
  EXPECT_TRUE(rules[1].actions.empty());
}

TEST(Classifier, ToFlowRulesTurnsStayIntoDrop) {
  Classifier c = Classifier::PassAll();
  EXPECT_TRUE(c.HasStayActions());
  auto rules = c.ToFlowRules(0, 0);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_TRUE(rules[0].actions.empty());
}

}  // namespace
}  // namespace sdx::policy
