#include "bgp/decision.h"

#include <gtest/gtest.h>

#include <vector>

namespace sdx::bgp {
namespace {

BgpRoute MakeRoute(std::vector<AsNumber> path, std::uint32_t local_pref = 100,
                   std::uint32_t med = 0, Origin origin = Origin::kIgp,
                   std::uint32_t router_id = 1) {
  BgpRoute route;
  route.prefix = *net::IPv4Prefix::Parse("10.0.0.0/8");
  route.as_path = std::move(path);
  route.local_pref = local_pref;
  route.med = med;
  route.origin = origin;
  route.peer_router_id = net::IPv4Address(router_id);
  return route;
}

TEST(Decision, HigherLocalPrefWins) {
  BgpRoute a = MakeRoute({1, 2, 3}, 200);
  BgpRoute b = MakeRoute({1}, 100);
  EXPECT_LT(CompareRoutes(a, b), 0);
  EXPECT_GT(CompareRoutes(b, a), 0);
}

TEST(Decision, ShorterPathWinsAtEqualLocalPref) {
  BgpRoute a = MakeRoute({1, 2});
  BgpRoute b = MakeRoute({1, 2, 3});
  EXPECT_LT(CompareRoutes(a, b), 0);
}

TEST(Decision, LowerOriginWins) {
  BgpRoute a = MakeRoute({1, 2}, 100, 0, Origin::kIgp);
  BgpRoute b = MakeRoute({3, 4}, 100, 0, Origin::kEgp);
  BgpRoute c = MakeRoute({5, 6}, 100, 0, Origin::kIncomplete);
  EXPECT_LT(CompareRoutes(a, b), 0);
  EXPECT_LT(CompareRoutes(b, c), 0);
  EXPECT_LT(CompareRoutes(a, c), 0);
}

TEST(Decision, LowerMedWins) {
  BgpRoute a = MakeRoute({1, 2}, 100, 10);
  BgpRoute b = MakeRoute({3, 4}, 100, 20);
  EXPECT_LT(CompareRoutes(a, b), 0);
}

TEST(Decision, LowerRouterIdBreaksTies) {
  BgpRoute a = MakeRoute({1, 2}, 100, 0, Origin::kIgp, 1);
  BgpRoute b = MakeRoute({3, 4}, 100, 0, Origin::kIgp, 2);
  EXPECT_LT(CompareRoutes(a, b), 0);
  BgpRoute c = MakeRoute({3, 4}, 100, 0, Origin::kIgp, 1);
  EXPECT_EQ(CompareRoutes(a, c), 0);
}

TEST(Decision, PrecedenceOrder) {
  // local_pref dominates path length; path length dominates origin; origin
  // dominates MED; MED dominates router id.
  BgpRoute low_pref_short = MakeRoute({1}, 100);
  BgpRoute high_pref_long = MakeRoute({1, 2, 3, 4}, 200);
  EXPECT_LT(CompareRoutes(high_pref_long, low_pref_short), 0);

  BgpRoute short_bad_origin = MakeRoute({1}, 100, 0, Origin::kIncomplete);
  BgpRoute long_good_origin = MakeRoute({1, 2}, 100, 0, Origin::kIgp);
  EXPECT_LT(CompareRoutes(short_bad_origin, long_good_origin), 0);

  BgpRoute good_origin_high_med = MakeRoute({1}, 100, 99, Origin::kIgp);
  BgpRoute bad_origin_low_med = MakeRoute({1}, 100, 0, Origin::kEgp);
  EXPECT_LT(CompareRoutes(good_origin_high_med, bad_origin_low_med), 0);
}

TEST(Decision, SelectBestFromSpan) {
  std::vector<BgpRoute> routes;
  routes.push_back(MakeRoute({1, 2, 3}));
  routes.push_back(MakeRoute({1}, 200));
  routes.push_back(MakeRoute({9}));
  const BgpRoute* best = SelectBest(routes);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->local_pref, 200u);
}

TEST(Decision, SelectBestEmpty) {
  std::vector<BgpRoute> routes;
  EXPECT_EQ(SelectBest(routes), nullptr);
}

TEST(Decision, SelectBestPointerSpanSkipsNulls) {
  BgpRoute a = MakeRoute({1, 2});
  BgpRoute b = MakeRoute({1});
  std::vector<const BgpRoute*> routes = {nullptr, &a, nullptr, &b};
  const BgpRoute* best = SelectBest(routes);
  EXPECT_EQ(best, &b);
}

TEST(Decision, ComparatorIsAntisymmetric) {
  BgpRoute a = MakeRoute({1, 2}, 150, 5, Origin::kEgp, 9);
  BgpRoute b = MakeRoute({1}, 150, 5, Origin::kIgp, 9);
  EXPECT_EQ(CompareRoutes(a, b), -CompareRoutes(b, a));
  EXPECT_EQ(CompareRoutes(a, a), 0);
}

}  // namespace
}  // namespace sdx::bgp
