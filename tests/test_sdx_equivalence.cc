// Differential test: the scalable VNH-based pipeline must forward exactly
// like the unoptimized §4.1 composition (ΣPi'') >> (ΣPi'') compiled over
// destination prefixes and real next-hop MACs.
//
// Both stacks are fed "participant S sends a packet to dst" and must agree
// on the final physical egress port and the delivered header fields (the
// MAC tag differs in flight — VMAC vs real MAC — but delivery rewrites it
// to the destination port MAC in both designs).
#include <gtest/gtest.h>

#include <random>

#include "policy/compile.h"
#include "sdx/composer.h"
#include "sdx/isolation.h"
#include "sdx/runtime.h"

namespace sdx::core {
namespace {

using policy::Predicate;

constexpr AsNumber kA = 100;
constexpr AsNumber kB = 200;
constexpr AsNumber kC = 300;

net::IPv4Prefix P(int i) {
  return net::IPv4Prefix(net::IPv4Address(10, static_cast<uint8_t>(i), 0, 0),
                         16);
}

class EquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_.AddParticipant(kA, 1);
    runtime_.AddParticipant(kB, 2);
    runtime_.AddParticipant(kC, 1);
    runtime_.route_server().DenyExport(kB, kA, P(4));
    for (int i = 1; i <= 4; ++i) runtime_.AnnouncePrefix(kB, P(i), {kB, 900});
    for (int i = 1; i <= 4; ++i) {
      runtime_.AnnouncePrefix(kC, P(i),
                              i == 3 ? std::vector<bgp::AsNumber>{kC, 901, 902}
                                     : std::vector<bgp::AsNumber>{kC});
    }
    runtime_.AnnouncePrefix(kA, P(5));

    OutboundClause web;
    web.match = Predicate::DstPort(80);
    web.to = kB;
    OutboundClause https;
    https.match = Predicate::DstPort(443);
    https.to = kC;
    runtime_.SetOutboundPolicy(kA, {web, https});

    InboundClause low;
    low.match = Predicate::SrcIp(*net::IPv4Prefix::Parse("0.0.0.0/1"));
    low.port_index = 0;
    InboundClause high;
    high.match = Predicate::SrcIp(*net::IPv4Prefix::Parse("128.0.0.0/1"));
    high.port_index = 1;
    runtime_.SetInboundPolicy(kB, {low, high});

    runtime_.FullCompile();

    // Faithful side: compile (ΣP)>>(ΣP) directly.
    Composer composer(runtime_.topology(), runtime_.route_server());
    faithful_ = policy::Compile(
        composer.BuildFaithfulPolicy(runtime_.participants()));
  }

  // Sends through the faithful classifier, modeling a border router that
  // tags with the REAL next-hop MAC (no VNH in the faithful design).
  std::vector<net::PacketHeader> SendFaithful(AsNumber from,
                                              net::PacketHeader header) {
    const bgp::BgpRoute* best = nullptr;
    // Router FIB: longest matching announced prefix with a route.
    for (int i = 1; i <= 5; ++i) {
      if (P(i).Contains(header.dst_ip)) {
        best = runtime_.route_server().BestRoute(from, P(i));
        break;
      }
    }
    if (best == nullptr) return {};  // router drop
    const auto& topo = runtime_.topology();
    header.in_port = topo.PhysicalPortOf(from, 0).id;
    header.src_mac = topo.PhysicalPortOf(from, 0).mac;
    header.dst_mac = topo.PhysicalPortOf(best->peer_as, 0).mac;
    return faithful_.Eval(header);
  }

  std::vector<net::PacketHeader> SendOptimized(AsNumber from,
                                               net::PacketHeader header) {
    net::Packet packet{header, 100};
    std::vector<net::PacketHeader> out;
    for (auto& emission : runtime_.InjectFromParticipant(from, packet)) {
      emission.packet.header.in_port = emission.out_port;
      out.push_back(emission.packet.header);
    }
    return out;
  }

  SdxRuntime runtime_;
  policy::Classifier faithful_;
};

TEST_F(EquivalenceTest, RandomTrafficAgrees) {
  std::mt19937 rng(2024);
  const AsNumber senders[] = {kA, kB, kC};
  const std::uint16_t ports[] = {80, 443, 22, 8080};
  int compared = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    net::PacketHeader h;
    h.src_ip = net::IPv4Address(static_cast<std::uint32_t>(rng()));
    h.dst_ip = net::IPv4Address(10, static_cast<uint8_t>(1 + rng() % 5),
                                static_cast<uint8_t>(rng() % 256),
                                static_cast<uint8_t>(rng() % 256));
    h.proto = net::kProtoTcp;
    h.src_port = static_cast<std::uint16_t>(rng());
    h.dst_port = ports[rng() % 4];
    const AsNumber from = senders[rng() % 3];

    auto faithful = SendFaithful(from, h);
    auto optimized = SendOptimized(from, h);

    ASSERT_EQ(faithful.size(), optimized.size())
        << "sender AS" << from << " packet " << h.ToString();
    if (faithful.empty()) continue;
    ++compared;
    ASSERT_EQ(faithful.size(), 1u);
    // Same egress port, same delivered headers (src_mac differs: the
    // faithful design leaves the sender's source MAC; ours does too).
    EXPECT_EQ(faithful[0].in_port, optimized[0].in_port)
        << "sender AS" << from << " packet " << h.ToString();
    EXPECT_EQ(faithful[0].dst_mac, optimized[0].dst_mac);
    EXPECT_EQ(faithful[0].dst_ip, optimized[0].dst_ip);
    EXPECT_EQ(faithful[0].dst_port, optimized[0].dst_port);
    EXPECT_EQ(faithful[0].src_ip, optimized[0].src_ip);
  }
  // The scenario routes most destinations: the comparison must be real.
  EXPECT_GT(compared, 1000);
}

TEST_F(EquivalenceTest, FaithfulClassifierIsLarge) {
  // The ablation claim of §4.2: prefix-based compilation produces far more
  // rules than VMAC grouping even at toy scale.
  EXPECT_GT(faithful_.size(), runtime_.data_plane().table().size());
}

}  // namespace
}  // namespace sdx::core
