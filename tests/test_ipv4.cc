#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sdx::net {
namespace {

TEST(IPv4Address, ConstructsFromOctets) {
  IPv4Address a(192, 0, 2, 1);
  EXPECT_EQ(a.value(), 0xC0000201u);
  EXPECT_EQ(a.ToString(), "192.0.2.1");
}

TEST(IPv4Address, ParsesValidAddresses) {
  EXPECT_EQ(IPv4Address::Parse("0.0.0.0"), IPv4Address(0));
  EXPECT_EQ(IPv4Address::Parse("255.255.255.255"), IPv4Address(0xFFFFFFFFu));
  EXPECT_EQ(IPv4Address::Parse("10.0.0.1"), IPv4Address(10, 0, 0, 1));
  EXPECT_EQ(IPv4Address::Parse("74.125.1.1"), IPv4Address(74, 125, 1, 1));
}

TEST(IPv4Address, RejectsInvalidAddresses) {
  EXPECT_FALSE(IPv4Address::Parse(""));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3"));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.4.5"));
  EXPECT_FALSE(IPv4Address::Parse("256.0.0.1"));
  EXPECT_FALSE(IPv4Address::Parse("1.2.3.4 "));
  EXPECT_FALSE(IPv4Address::Parse("a.b.c.d"));
  EXPECT_FALSE(IPv4Address::Parse("01.2.3.4"));
  EXPECT_FALSE(IPv4Address::Parse("1..2.3"));
  EXPECT_FALSE(IPv4Address::Parse("-1.2.3.4"));
}

TEST(IPv4Address, RoundTripsThroughString) {
  for (std::uint32_t value : {0u, 1u, 0x7F000001u, 0xC0A80101u, 0xFFFFFFFFu}) {
    IPv4Address a(value);
    EXPECT_EQ(IPv4Address::Parse(a.ToString()), a);
  }
}

TEST(IPv4Address, Ordering) {
  EXPECT_LT(IPv4Address(10, 0, 0, 1), IPv4Address(10, 0, 0, 2));
  EXPECT_LT(IPv4Address(9, 255, 255, 255), IPv4Address(10, 0, 0, 0));
}

TEST(IPv4Prefix, MaskValues) {
  EXPECT_EQ(IPv4Prefix::Mask(0), 0u);
  EXPECT_EQ(IPv4Prefix::Mask(8), 0xFF000000u);
  EXPECT_EQ(IPv4Prefix::Mask(24), 0xFFFFFF00u);
  EXPECT_EQ(IPv4Prefix::Mask(32), 0xFFFFFFFFu);
}

TEST(IPv4Prefix, CanonicalizesHostBits) {
  IPv4Prefix p(IPv4Address(10, 1, 2, 3), 8);
  EXPECT_EQ(p.network(), IPv4Address(10, 0, 0, 0));
  EXPECT_EQ(p.length(), 8);
}

TEST(IPv4Prefix, ParsesCidr) {
  auto p = IPv4Prefix::Parse("192.168.0.0/16");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->network(), IPv4Address(192, 168, 0, 0));
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->ToString(), "192.168.0.0/16");
}

TEST(IPv4Prefix, BareAddressParsesAsSlash32) {
  auto p = IPv4Prefix::Parse("10.0.0.1");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 32);
}

TEST(IPv4Prefix, RejectsNonCanonicalAndMalformed) {
  EXPECT_FALSE(IPv4Prefix::Parse("10.1.2.3/8"));  // host bits set
  EXPECT_FALSE(IPv4Prefix::Parse("10.0.0.0/33"));
  EXPECT_FALSE(IPv4Prefix::Parse("10.0.0.0/"));
  EXPECT_FALSE(IPv4Prefix::Parse("/8"));
  EXPECT_FALSE(IPv4Prefix::Parse("10.0.0.0/8x"));
}

TEST(IPv4Prefix, ContainsAddress) {
  IPv4Prefix p(IPv4Address(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.Contains(IPv4Address(10, 0, 0, 0)));
  EXPECT_TRUE(p.Contains(IPv4Address(10, 255, 255, 255)));
  EXPECT_FALSE(p.Contains(IPv4Address(11, 0, 0, 0)));
  EXPECT_FALSE(p.Contains(IPv4Address(9, 255, 255, 255)));
}

TEST(IPv4Prefix, SlashZeroContainsEverything) {
  IPv4Prefix all(IPv4Address(0), 0);
  EXPECT_TRUE(all.Contains(IPv4Address(0)));
  EXPECT_TRUE(all.Contains(IPv4Address(0xFFFFFFFFu)));
  EXPECT_TRUE(all.Contains(IPv4Prefix(IPv4Address(10, 0, 0, 0), 8)));
}

TEST(IPv4Prefix, ContainsPrefix) {
  IPv4Prefix wide(IPv4Address(10, 0, 0, 0), 8);
  IPv4Prefix narrow(IPv4Address(10, 1, 0, 0), 16);
  EXPECT_TRUE(wide.Contains(narrow));
  EXPECT_FALSE(narrow.Contains(wide));
  EXPECT_TRUE(wide.Contains(wide));
}

TEST(IPv4Prefix, OverlapAndIntersect) {
  IPv4Prefix wide(IPv4Address(10, 0, 0, 0), 8);
  IPv4Prefix narrow(IPv4Address(10, 1, 0, 0), 16);
  IPv4Prefix other(IPv4Address(11, 0, 0, 0), 8);

  EXPECT_TRUE(wide.Overlaps(narrow));
  EXPECT_TRUE(narrow.Overlaps(wide));
  EXPECT_FALSE(wide.Overlaps(other));

  EXPECT_EQ(wide.Intersect(narrow), narrow);
  EXPECT_EQ(narrow.Intersect(wide), narrow);
  EXPECT_FALSE(wide.Intersect(other));
}

TEST(IPv4Prefix, SiblingPrefixesDisjoint) {
  IPv4Prefix left(IPv4Address(0, 0, 0, 0), 1);
  IPv4Prefix right(IPv4Address(128, 0, 0, 0), 1);
  EXPECT_FALSE(left.Overlaps(right));
  EXPECT_EQ(left.LastAddress(), IPv4Address(127, 255, 255, 255));
  EXPECT_EQ(right.FirstAddress(), IPv4Address(128, 0, 0, 0));
}

TEST(IPv4Prefix, HashDistinguishesLengths) {
  std::unordered_set<IPv4Prefix> set;
  set.insert(IPv4Prefix(IPv4Address(10, 0, 0, 0), 8));
  set.insert(IPv4Prefix(IPv4Address(10, 0, 0, 0), 16));
  set.insert(IPv4Prefix(IPv4Address(10, 0, 0, 0), 8));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace sdx::net
