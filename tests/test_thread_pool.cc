// Tests for the work-stealing pool behind parallel compilation
// (DESIGN.md §8): every index runs exactly once, results are
// position-deterministic regardless of execution order, exceptions
// propagate, and sizing follows SDX_COMPILE_THREADS.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace sdx::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroAndSingleElementBatches) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SizeOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(100);
  pool.ParallelFor(ran.size(), [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

// Writing into pre-sized independent slots makes parallel output identical
// to sequential output — the property the compiler's deterministic merge
// relies on.
TEST(ThreadPool, SlotWritesAreDeterministic) {
  constexpr std::size_t kN = 5'000;
  std::vector<std::uint64_t> sequential(kN), parallel(kN);
  auto value = [](std::size_t i) {
    return static_cast<std::uint64_t>(i) * 2654435761u + 17;
  };
  for (std::size_t i = 0; i < kN; ++i) sequential[i] = value(i);
  ThreadPool pool(8);
  for (int round = 0; round < 5; ++round) {
    std::fill(parallel.begin(), parallel.end(), 0);
    pool.ParallelFor(kN, [&](std::size_t i) { parallel[i] = value(i); });
    ASSERT_EQ(parallel, sequential) << "round " << round;
  }
}

TEST(ThreadPool, UnevenTaskCostsBalance) {
  // Task i spins proportionally to i^2; stealing must still complete all.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  pool.ParallelFor(200, [&](std::size_t i) {
    volatile std::uint64_t sink = 0;
    for (std::size_t k = 0; k < i * i; ++k) sink += k;
    total += i;
  });
  EXPECT_EQ(total.load(), 200u * 199u / 2);
}

TEST(ThreadPool, PropagatesFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](std::size_t i) {
                         if (i == 37) throw std::runtime_error("task 37");
                         ++completed;
                       }),
      std::runtime_error);
  // The batch drains before rethrow: everything except the thrower ran.
  EXPECT_EQ(completed.load(), 99);

  // The pool stays usable after an exception.
  std::atomic<int> after{0};
  pool.ParallelFor(10, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, BackToBackBatches) {
  ThreadPool pool(4);
  std::uint64_t sum = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint64_t> out(64);
    pool.ParallelFor(out.size(), [&](std::size_t i) { out[i] = i + 1; });
    sum += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(sum, 50u * (64u * 65u / 2));
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  const char* saved = std::getenv("SDX_COMPILE_THREADS");
  const std::string saved_value = saved ? saved : "";

  ::setenv("SDX_COMPILE_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  // Non-positive and garbage values fall back to hardware concurrency.
  ::setenv("SDX_COMPILE_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  ::setenv("SDX_COMPILE_THREADS", "nope", 1);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);

  if (saved) {
    ::setenv("SDX_COMPILE_THREADS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("SDX_COMPILE_THREADS");
  }
}

}  // namespace
}  // namespace sdx::util
