#include "net/mac.h"

#include <gtest/gtest.h>

namespace sdx::net {
namespace {

TEST(MacAddress, ConstructsFromBytes) {
  MacAddress m(0x0A, 0x1B, 0x2C, 0x3D, 0x4E, 0x5F);
  EXPECT_EQ(m.value(), 0x0A1B2C3D4E5Full);
  EXPECT_EQ(m.ToString(), "0a:1b:2c:3d:4e:5f");
}

TEST(MacAddress, MasksTo48Bits) {
  MacAddress m(0xFFFF0A1B2C3D4E5Full);
  EXPECT_EQ(m.value(), 0x0A1B2C3D4E5Full);
}

TEST(MacAddress, ParsesValid) {
  auto m = MacAddress::Parse("00:11:22:aa:bb:cc");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->value(), 0x001122AABBCCull);
  EXPECT_EQ(MacAddress::Parse("ff:ff:ff:ff:ff:ff")->value(),
            0xFFFFFFFFFFFFull);
}

TEST(MacAddress, RejectsInvalid) {
  EXPECT_FALSE(MacAddress::Parse(""));
  EXPECT_FALSE(MacAddress::Parse("00:11:22:aa:bb"));
  EXPECT_FALSE(MacAddress::Parse("00:11:22:aa:bb:cc:dd"));
  EXPECT_FALSE(MacAddress::Parse("0:11:22:aa:bb:cc"));
  EXPECT_FALSE(MacAddress::Parse("00-11-22-aa-bb-cc"));
  EXPECT_FALSE(MacAddress::Parse("zz:11:22:aa:bb:cc"));
}

TEST(MacAddress, RoundTrip) {
  MacAddress m(0xDEADBEEF01ull);
  EXPECT_EQ(MacAddress::Parse(m.ToString()), m);
}

TEST(MacAddress, Broadcast) {
  EXPECT_TRUE(MacAddress(0xFFFFFFFFFFFFull).IsBroadcast());
  EXPECT_FALSE(MacAddress(1).IsBroadcast());
}

TEST(MacAddress, Ordering) {
  EXPECT_LT(MacAddress(1), MacAddress(2));
  EXPECT_EQ(MacAddress(7), MacAddress(7));
}

}  // namespace
}  // namespace sdx::net
