#include "sdx/fec.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sdx::core {
namespace {

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

std::vector<net::IPv4Prefix> Pfxs(std::initializer_list<const char*> texts) {
  std::vector<net::IPv4Prefix> out;
  for (const char* text : texts) out.push_back(Pfx(text));
  return out;
}

// Finds the group containing `prefix`; fails the test when absent.
const PrefixGroup& GroupOf(const std::vector<PrefixGroup>& groups,
                           const net::IPv4Prefix& prefix) {
  for (const PrefixGroup& group : groups) {
    if (std::find(group.prefixes.begin(), group.prefixes.end(), prefix) !=
        group.prefixes.end()) {
      return group;
    }
  }
  ADD_FAILURE() << "no group contains " << prefix;
  static const PrefixGroup empty;
  return empty;
}

TEST(FecComputer, PaperExampleFromSection42) {
  // §4.2: C = {{p1,p2,p3}, {p1,p2,p3,p4}, {p1,p2,p4}, {p3}} yields
  // C' = {{p1,p2},{p3},{p4}}.
  FecComputer fec;
  fec.AddBehaviorSet(Pfxs({"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16"}));
  fec.AddBehaviorSet(
      Pfxs({"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.4.0.0/16"}));
  fec.AddBehaviorSet(Pfxs({"10.1.0.0/16", "10.2.0.0/16", "10.4.0.0/16"}));
  fec.AddBehaviorSet(Pfxs({"10.3.0.0/16"}));

  auto groups = fec.Compute();
  ASSERT_EQ(groups.size(), 3u);

  const PrefixGroup& g12 = GroupOf(groups, Pfx("10.1.0.0/16"));
  EXPECT_EQ(g12.prefixes.size(), 2u);
  EXPECT_EQ(GroupOf(groups, Pfx("10.2.0.0/16")).id, g12.id);

  const PrefixGroup& g3 = GroupOf(groups, Pfx("10.3.0.0/16"));
  EXPECT_EQ(g3.prefixes.size(), 1u);
  const PrefixGroup& g4 = GroupOf(groups, Pfx("10.4.0.0/16"));
  EXPECT_EQ(g4.prefixes.size(), 1u);
  EXPECT_NE(g3.id, g4.id);
}

TEST(FecComputer, EmptyInputYieldsNoGroups) {
  FecComputer fec;
  EXPECT_TRUE(fec.Compute().empty());
  fec.AddBehaviorSet({});
  EXPECT_TRUE(fec.Compute().empty());
}

TEST(FecComputer, SingleSetSingleGroup) {
  FecComputer fec;
  fec.AddBehaviorSet(Pfxs({"10.0.0.0/8", "20.0.0.0/8", "30.0.0.0/8"}));
  auto groups = fec.Compute();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].prefixes.size(), 3u);
  EXPECT_EQ(groups[0].member_of, std::vector<std::uint32_t>{0});
}

TEST(FecComputer, DisjointSetsStayApart) {
  FecComputer fec;
  fec.AddBehaviorSet(Pfxs({"10.0.0.0/8"}));
  fec.AddBehaviorSet(Pfxs({"20.0.0.0/8"}));
  auto groups = fec.Compute();
  EXPECT_EQ(groups.size(), 2u);
}

TEST(FecComputer, DuplicatePrefixWithinSetCountedOnce) {
  FecComputer fec;
  fec.AddBehaviorSet(Pfxs({"10.0.0.0/8", "10.0.0.0/8"}));
  auto groups = fec.Compute();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].prefixes.size(), 1u);
  EXPECT_EQ(groups[0].member_of.size(), 1u);
}

TEST(FecComputer, MemberOfRecordsSignature) {
  FecComputer fec;
  auto s0 = fec.AddBehaviorSet(Pfxs({"10.0.0.0/8", "20.0.0.0/8"}));
  auto s1 = fec.AddBehaviorSet(Pfxs({"20.0.0.0/8", "30.0.0.0/8"}));
  auto groups = fec.Compute();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(GroupOf(groups, Pfx("10.0.0.0/8")).member_of,
            (std::vector<std::uint32_t>{s0}));
  EXPECT_EQ(GroupOf(groups, Pfx("20.0.0.0/8")).member_of,
            (std::vector<std::uint32_t>{s0, s1}));
  EXPECT_EQ(GroupOf(groups, Pfx("30.0.0.0/8")).member_of,
            (std::vector<std::uint32_t>{s1}));
}

TEST(FecComputer, ClearResets) {
  FecComputer fec;
  fec.AddBehaviorSet(Pfxs({"10.0.0.0/8"}));
  fec.Clear();
  EXPECT_EQ(fec.behavior_set_count(), 0u);
  EXPECT_TRUE(fec.Compute().empty());
}

// Property: groups partition the input (every prefix in exactly one group)
// and are maximal (two prefixes share a group iff identical membership).
TEST(FecComputerProperty, PartitionAndMaximality) {
  // Deterministic pseudo-random membership over 64 prefixes and 10 sets.
  std::vector<net::IPv4Prefix> prefixes;
  for (int i = 0; i < 64; ++i) {
    prefixes.push_back(
        net::IPv4Prefix(net::IPv4Address(10, 0, static_cast<uint8_t>(i), 0),
                        24));
  }
  std::vector<std::vector<bool>> member(prefixes.size(),
                                        std::vector<bool>(10));
  std::uint64_t state = 0x12345678;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) & 1;
  };
  FecComputer fec;
  for (int s = 0; s < 10; ++s) {
    std::vector<net::IPv4Prefix> set;
    for (std::size_t p = 0; p < prefixes.size(); ++p) {
      if (next()) {
        member[p][static_cast<std::size_t>(s)] = true;
        set.push_back(prefixes[p]);
      }
    }
    fec.AddBehaviorSet(set);
  }
  auto groups = fec.Compute();

  // Partition: each prefix with nonempty membership appears exactly once.
  std::map<net::IPv4Prefix, int> seen;
  for (const auto& group : groups) {
    for (const auto& prefix : group.prefixes) seen[prefix]++;
  }
  for (std::size_t p = 0; p < prefixes.size(); ++p) {
    bool any = std::any_of(member[p].begin(), member[p].end(),
                           [](bool b) { return b; });
    EXPECT_EQ(seen[prefixes[p]], any ? 1 : 0);
  }

  // Maximality: same signature iff same group.
  auto signature = [&](std::size_t p) { return member[p]; };
  for (std::size_t a = 0; a < prefixes.size(); ++a) {
    for (std::size_t b = a + 1; b < prefixes.size(); ++b) {
      bool a_grouped = seen[prefixes[a]] == 1;
      bool b_grouped = seen[prefixes[b]] == 1;
      if (!a_grouped || !b_grouped) continue;
      const PrefixGroup& ga = GroupOf(groups, prefixes[a]);
      const PrefixGroup& gb = GroupOf(groups, prefixes[b]);
      EXPECT_EQ(ga.id == gb.id, signature(a) == signature(b));
    }
  }
}

}  // namespace
}  // namespace sdx::core
