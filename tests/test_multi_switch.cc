// Multi-switch deployment (§4.1): the fabric substrate and the star
// deployment must forward exactly like the single-switch data plane.
#include <gtest/gtest.h>

#include <random>

#include "sdx/multi_switch.h"
#include "sdx/runtime.h"
#include "workload/policy_gen.h"
#include "workload/topology_gen.h"

namespace sdx::core {
namespace {

using dataplane::MultiSwitchFabric;

net::IPv4Prefix Pfx(const char* text) {
  return *net::IPv4Prefix::Parse(text);
}

TEST(MultiSwitchFabric, SingleSwitchPassThrough) {
  MultiSwitchFabric fabric;
  auto& sw = fabric.AddSwitch(1);
  fabric.AssignEdgePort(10, 1);
  fabric.AssignEdgePort(11, 1);
  dataplane::FlowRule rule;
  rule.priority = 1;
  rule.actions = {dataplane::Action{{}, 11}};
  sw.table().Install(rule);

  net::Packet packet;
  packet.header.in_port = 10;
  auto out = fabric.ProcessFromEdge(packet);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out_port, 11u);
}

TEST(MultiSwitchFabric, CrossesLinks) {
  MultiSwitchFabric fabric;
  auto& a = fabric.AddSwitch(1);
  auto& b = fabric.AddSwitch(2);
  fabric.Connect(1, 100, 2, 200);
  fabric.AssignEdgePort(10, 1);
  fabric.AssignEdgePort(20, 2);

  dataplane::FlowRule to_link;
  to_link.priority = 1;
  to_link.actions = {dataplane::Action{{}, 100}};
  a.table().Install(to_link);

  dataplane::FlowRule to_edge;
  to_edge.priority = 1;
  to_edge.match = net::FieldMatch::InPort(200);
  to_edge.actions = {dataplane::Action{{}, 20}};
  b.table().Install(to_edge);

  net::Packet packet;
  packet.header.in_port = 10;
  auto out = fabric.ProcessFromEdge(packet);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].out_port, 20u);
  EXPECT_TRUE(fabric.IsInternalPort(1, 100));
  EXPECT_FALSE(fabric.IsInternalPort(1, 10));
}

TEST(MultiSwitchFabric, HopLimitStopsLoops) {
  MultiSwitchFabric fabric;
  auto& a = fabric.AddSwitch(1);
  auto& b = fabric.AddSwitch(2);
  fabric.Connect(1, 100, 2, 200);
  fabric.AssignEdgePort(10, 1);

  // Both switches bounce everything back across the link: a loop.
  dataplane::FlowRule bounce_a;
  bounce_a.priority = 1;
  bounce_a.actions = {dataplane::Action{{}, 100}};
  a.table().Install(bounce_a);
  dataplane::FlowRule bounce_b;
  bounce_b.priority = 1;
  bounce_b.actions = {dataplane::Action{{}, 200}};
  b.table().Install(bounce_b);

  net::Packet packet;
  packet.header.in_port = 10;
  auto out = fabric.ProcessFromEdge(packet, /*max_hops=*/4);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fabric.hop_limit_drops(), 1u);
}

// Regression: a rule emitting on a port that is neither an internal link
// nor an edge port used to surface as an edge emission from thin air — a
// rule on switch A could "deliver" traffic to a port it does not host.
// Such emissions are isolation violations and must be dropped.
TEST(MultiSwitchFabric, EmissionOnUndeclaredPortIsDropped) {
  MultiSwitchFabric fabric;
  auto& sw = fabric.AddSwitch(1);
  fabric.AssignEdgePort(10, 1);
  dataplane::FlowRule rule;
  rule.priority = 1;
  rule.actions = {dataplane::Action{{}, 777}};  // 777 declared nowhere
  sw.table().Install(rule);

  net::Packet packet;
  packet.header.in_port = 10;
  packet.size_bytes = 500;
  EXPECT_TRUE(fabric.ProcessFromEdge(packet).empty());
  EXPECT_EQ(fabric.drops().count(obs::DropReason::kIsolationViolation), 1u);
  // The emitting switch's tx accounting was reversed: the packet never
  // actually left.
  EXPECT_EQ(sw.StatsFor(777).tx_packets, 0u);
  EXPECT_EQ(sw.StatsFor(777).tx_bytes, 0u);
}

// Regression: switch A emitting on an edge port that belongs to switch B
// used to be surfaced as a legitimate delivery — bypassing B's tables
// entirely. Edge emissions are only valid from the port's hosting switch.
TEST(MultiSwitchFabric, EmissionOnForeignEdgePortIsDropped) {
  MultiSwitchFabric fabric;
  auto& a = fabric.AddSwitch(1);
  fabric.AddSwitch(2);
  fabric.AssignEdgePort(10, 1);
  fabric.AssignEdgePort(20, 2);  // hosted by switch 2

  dataplane::FlowRule rule;
  rule.priority = 1;
  rule.actions = {dataplane::Action{{}, 20}};  // not ours to emit on
  a.table().Install(rule);

  net::Packet packet;
  packet.header.in_port = 10;
  EXPECT_TRUE(fabric.ProcessFromEdge(packet).empty());
  EXPECT_EQ(fabric.drops().count(obs::DropReason::kIsolationViolation), 1u);
  EXPECT_EQ(a.StatsFor(20).tx_packets, 0u);
}

// Regression: packets dropped at the hop limit had already incremented
// tx counters at every traversed link port, so tx stats reported traffic
// that never reached an edge. The final (dropped) emission's tx must be
// reversed — counters reflect actual emission fate.
TEST(MultiSwitchFabric, HopLimitDropReversesTxAccounting) {
  MultiSwitchFabric fabric;
  auto& a = fabric.AddSwitch(1);
  auto& b = fabric.AddSwitch(2);
  fabric.Connect(1, 100, 2, 200);
  fabric.AssignEdgePort(10, 1);

  dataplane::FlowRule bounce_a;
  bounce_a.priority = 1;
  bounce_a.actions = {dataplane::Action{{}, 100}};
  a.table().Install(bounce_a);
  dataplane::FlowRule bounce_b;
  bounce_b.priority = 1;
  bounce_b.actions = {dataplane::Action{{}, 200}};
  b.table().Install(bounce_b);

  net::Packet packet;
  packet.header.in_port = 10;
  packet.size_bytes = 100;
  // max_hops=4: emissions at 100, 200, 100, 200, then the 5th (on 100)
  // trips the limit and must be un-counted → 2 on each link port.
  EXPECT_TRUE(fabric.ProcessFromEdge(packet, /*max_hops=*/4).empty());
  EXPECT_EQ(fabric.hop_limit_drops(), 1u);
  EXPECT_EQ(a.StatsFor(100).tx_packets, 2u);
  EXPECT_EQ(b.StatsFor(200).tx_packets, 2u);
  EXPECT_EQ(a.StatsFor(100).tx_bytes, 200u);
}

TEST(MultiSwitchFabric, BatchMatchesSequentialProcessing) {
  auto build = [](MultiSwitchFabric& fabric) {
    auto& a = fabric.AddSwitch(1);
    auto& b = fabric.AddSwitch(2);
    fabric.Connect(1, 100, 2, 200);
    fabric.AssignEdgePort(10, 1);
    fabric.AssignEdgePort(20, 2);
    dataplane::FlowRule to_link;
    to_link.priority = 1;
    to_link.match = net::FieldMatch::DstPort(80);
    to_link.actions = {dataplane::Action{{}, 100}};
    a.table().Install(to_link);
    dataplane::FlowRule to_edge;
    to_edge.priority = 1;
    to_edge.match = net::FieldMatch::InPort(200);
    to_edge.actions = {dataplane::Action{{}, 20}};
    b.table().Install(to_edge);
  };
  MultiSwitchFabric sequential;
  MultiSwitchFabric batched;
  build(sequential);
  build(batched);

  std::vector<net::Packet> packets;
  for (int i = 0; i < 32; ++i) {
    net::Packet p;
    p.header.in_port = 10;
    p.header.dst_port = i % 3 == 0 ? 80 : 81;  // mix of delivered and missed
    p.header.src_port = static_cast<std::uint16_t>(i);
    p.size_bytes = 64;
    packets.push_back(p);
  }
  std::vector<dataplane::Emission> expected;
  for (const net::Packet& p : packets) {
    for (auto& e : sequential.ProcessFromEdge(p)) {
      expected.push_back(std::move(e));
    }
  }
  const auto got = batched.ProcessFromEdgeBatch(packets);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].out_port, expected[i].out_port);
    EXPECT_EQ(got[i].packet.header, expected[i].packet.header);
  }
  EXPECT_EQ(batched.AggregateDrops().total(),
            sequential.AggregateDrops().total());
  EXPECT_EQ(batched.FindSwitch(2)->StatsFor(20).tx_packets,
            sequential.FindSwitch(2)->StatsFor(20).tx_packets);
}

TEST(MultiSwitchFabric, UnknownEntryPortDrops) {
  MultiSwitchFabric fabric;
  fabric.AddSwitch(1);
  net::Packet packet;
  packet.header.in_port = 99;
  EXPECT_TRUE(fabric.ProcessFromEdge(packet).empty());
}

TEST(MultiSwitchFabric, InvalidConfigurationThrows) {
  MultiSwitchFabric fabric;
  fabric.AddSwitch(1);
  EXPECT_THROW(fabric.Connect(1, 5, 9, 6), std::invalid_argument);
  EXPECT_THROW(fabric.AssignEdgePort(10, 9), std::invalid_argument);
}

// Differential test: the star deployment forwards exactly like the
// single-switch SDX on the Figure 1 scenario plus a service chain.
class DeploymentDifferential : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    runtime_.AddParticipant(100, 1);
    runtime_.AddParticipant(200, 2);
    runtime_.AddParticipant(300, 1);
    runtime_.route_server().DenyExport(200, 100, Pfx("10.4.0.0/16"));
    for (int i = 1; i <= 4; ++i) {
      runtime_.AnnouncePrefix(
          200, net::IPv4Prefix(net::IPv4Address(10, i, 0, 0), 16),
          {200, 900});
      runtime_.AnnouncePrefix(
          300, net::IPv4Prefix(net::IPv4Address(10, i, 0, 0), 16),
          i == 3 ? std::vector<bgp::AsNumber>{300, 901, 902}
                 : std::vector<bgp::AsNumber>{300});
    }
    OutboundClause web;
    web.match = policy::Predicate::DstPort(80);
    web.to = 200;
    OutboundClause https;
    https.match = policy::Predicate::DstPort(443);
    https.to = 300;
    runtime_.SetOutboundPolicy(100, {web, https});
    InboundClause low;
    low.match = policy::Predicate::SrcIp(Pfx("0.0.0.0/1"));
    low.port_index = 0;
    InboundClause high;
    high.match = policy::Predicate::SrcIp(Pfx("128.0.0.0/1"));
    high.port_index = 1;
    runtime_.SetInboundPolicy(200, {low, high});
    runtime_.FullCompile();
  }

  SdxRuntime runtime_;
};

TEST_P(DeploymentDifferential, MatchesSingleSwitch) {
  const int edges = GetParam();
  MultiSwitchDeployment deployment(runtime_.topology(), edges);
  deployment.Install(runtime_.data_plane().table().rules());

  std::mt19937 rng(17);
  const bgp::AsNumber senders[] = {100, 200, 300};
  const std::uint16_t ports[] = {80, 443, 22};
  int delivered = 0;
  for (int trial = 0; trial < 500; ++trial) {
    net::Packet packet;
    packet.header.src_ip =
        net::IPv4Address(static_cast<std::uint32_t>(rng()));
    packet.header.dst_ip = net::IPv4Address(
        10, static_cast<uint8_t>(1 + rng() % 4),
        static_cast<uint8_t>(rng() % 255), 1);
    packet.header.proto = net::kProtoTcp;
    packet.header.dst_port = ports[rng() % 3];
    packet.size_bytes = 100;
    const bgp::AsNumber from = senders[rng() % 3];

    // Tag through the border router model, then run both data planes.
    const BorderRouter* router = runtime_.FindRouter(from);
    ASSERT_NE(router, nullptr);
    auto tagged = router->EmitPacket(packet, runtime_.arp());

    auto single = runtime_.InjectFromParticipant(from, packet);
    if (!tagged) {
      EXPECT_TRUE(single.empty());
      continue;
    }
    auto multi = deployment.Process(*tagged);

    ASSERT_EQ(single.size(), multi.size())
        << "sender AS" << from << " " << packet.header.ToString();
    if (single.empty()) continue;
    ++delivered;
    EXPECT_EQ(single[0].out_port, multi[0].out_port);
    EXPECT_EQ(single[0].packet.header, multi[0].packet.header);
  }
  EXPECT_GT(delivered, 200);
  EXPECT_EQ(deployment.fabric().hop_limit_drops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Edges, DeploymentDifferential,
                         ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "edges" + std::to_string(info.param);
                         });

// And a larger randomized scenario across 3 edges.
TEST(DeploymentDifferentialLarge, RandomScenarioMatches) {
  workload::TopologyParams topo;
  topo.participants = 30;
  topo.total_prefixes = 300;
  topo.seed = 31;
  auto scenario = workload::TopologyGenerator(topo).Generate();
  workload::PolicyParams pp;
  pp.seed = 32;
  pp.coverage_fanout = 15;
  auto policies = workload::PolicyGenerator(pp).Generate(scenario);
  SdxRuntime runtime;
  workload::Install(runtime, scenario, policies);
  runtime.FullCompile();

  MultiSwitchDeployment deployment(runtime.topology(), 3);
  deployment.Install(runtime.data_plane().table().rules());

  std::mt19937 rng(33);
  int delivered = 0;
  for (int trial = 0; trial < 600; ++trial) {
    const auto& member = scenario.members[rng() % scenario.members.size()];
    net::Packet packet;
    const auto& prefix = scenario.prefixes[rng() % scenario.prefixes.size()];
    packet.header.dst_ip =
        net::IPv4Address(prefix.network().value() | (rng() & 0xFF));
    packet.header.src_ip =
        net::IPv4Address(static_cast<std::uint32_t>(rng()));
    packet.header.proto = net::kProtoTcp;
    packet.header.dst_port = rng() % 2 ? 80 : 443;
    packet.size_bytes = 64;

    const BorderRouter* router = runtime.FindRouter(member.as);
    auto tagged = router->EmitPacket(packet, runtime.arp());
    auto single = runtime.InjectFromParticipant(member.as, packet);
    if (!tagged) {
      EXPECT_TRUE(single.empty());
      continue;
    }
    auto multi = deployment.Process(*tagged);
    ASSERT_EQ(single.size(), multi.size());
    if (single.empty()) continue;
    ++delivered;
    EXPECT_EQ(single[0].out_port, multi[0].out_port);
    EXPECT_EQ(single[0].packet.header, multi[0].packet.header);
  }
  EXPECT_GT(delivered, 200);
}

}  // namespace
}  // namespace sdx::core
