#include "policy/predicate.h"

#include <gtest/gtest.h>

namespace sdx::policy {
namespace {

using net::FieldMatch;
using net::IPv4Prefix;
using net::PacketHeader;

IPv4Prefix Pfx(const char* text) { return *IPv4Prefix::Parse(text); }

PacketHeader WebPacket() {
  PacketHeader h;
  h.in_port = 1;
  h.dst_ip = net::IPv4Address(74, 125, 1, 1);
  h.src_ip = net::IPv4Address(10, 0, 0, 1);
  h.proto = net::kProtoTcp;
  h.dst_port = 80;
  return h;
}

TEST(Predicate, ConstantsEvaluate) {
  EXPECT_TRUE(Predicate::True().Eval(WebPacket()));
  EXPECT_FALSE(Predicate::False().Eval(WebPacket()));
}

TEST(Predicate, FieldTests) {
  EXPECT_TRUE(Predicate::DstPort(80).Eval(WebPacket()));
  EXPECT_FALSE(Predicate::DstPort(443).Eval(WebPacket()));
  EXPECT_TRUE(Predicate::SrcIp(Pfx("10.0.0.0/8")).Eval(WebPacket()));
  EXPECT_TRUE(Predicate::InPort(1).Eval(WebPacket()));
  EXPECT_FALSE(Predicate::InPort(2).Eval(WebPacket()));
}

TEST(Predicate, BooleanOperators) {
  auto p = Predicate::DstPort(80) && Predicate::InPort(1);
  EXPECT_TRUE(p.Eval(WebPacket()));
  p = Predicate::DstPort(443) || Predicate::InPort(1);
  EXPECT_TRUE(p.Eval(WebPacket()));
  p = !Predicate::DstPort(80);
  EXPECT_FALSE(p.Eval(WebPacket()));
  p = !(Predicate::DstPort(80) && Predicate::InPort(2));
  EXPECT_TRUE(p.Eval(WebPacket()));
}

TEST(Predicate, ConstantFolding) {
  EXPECT_EQ((Predicate::True() && Predicate::DstPort(80)).kind(),
            Predicate::Kind::kTest);
  EXPECT_EQ((Predicate::False() && Predicate::DstPort(80)).kind(),
            Predicate::Kind::kFalse);
  EXPECT_EQ((Predicate::True() || Predicate::DstPort(80)).kind(),
            Predicate::Kind::kTrue);
  EXPECT_EQ((Predicate::False() || Predicate::DstPort(80)).kind(),
            Predicate::Kind::kTest);
  EXPECT_EQ((!Predicate::True()).kind(), Predicate::Kind::kFalse);
  EXPECT_EQ((!!Predicate::DstPort(80)).kind(), Predicate::Kind::kTest);
}

TEST(Predicate, TestConjunctionFoldsToIntersection) {
  auto p = Predicate::DstPort(80) && Predicate::InPort(1);
  ASSERT_EQ(p.kind(), Predicate::Kind::kTest);
  EXPECT_EQ(p.test().ConstrainedFieldCount(), 2);

  auto conflict = Predicate::DstPort(80) && Predicate::DstPort(443);
  EXPECT_EQ(conflict.kind(), Predicate::Kind::kFalse);
}

TEST(Predicate, WildcardTestIsTrue) {
  EXPECT_EQ(Predicate::Test(FieldMatch()).kind(), Predicate::Kind::kTrue);
}

TEST(Predicate, AnyInPortMatchesAnyListedPort) {
  auto p = Predicate::AnyInPort({3, 5, 7});
  PacketHeader h;
  h.in_port = 5;
  EXPECT_TRUE(p.Eval(h));
  h.in_port = 4;
  EXPECT_FALSE(p.Eval(h));
  EXPECT_EQ(Predicate::AnyInPort({}).kind(), Predicate::Kind::kFalse);
}

TEST(Predicate, AnyDstIpMatchesAnyListedPrefix) {
  auto p = Predicate::AnyDstIp({Pfx("10.0.0.0/8"), Pfx("20.0.0.0/8")});
  PacketHeader h;
  h.dst_ip = net::IPv4Address(20, 1, 1, 1);
  EXPECT_TRUE(p.Eval(h));
  h.dst_ip = net::IPv4Address(30, 1, 1, 1);
  EXPECT_FALSE(p.Eval(h));
}

TEST(Predicate, StructuralSharingIdentity) {
  auto p = Predicate::DstPort(80);
  auto q = p;
  EXPECT_EQ(p, q);
  EXPECT_EQ(p.id(), q.id());
  auto r = Predicate::DstPort(80);
  EXPECT_NE(p.id(), r.id());  // separately constructed
}

TEST(Predicate, ToStringIsReadable) {
  auto p = Predicate::DstPort(80) || !Predicate::InPort(1);
  EXPECT_EQ(p.ToString(), "(match(dst_port=80) || !(match(in_port=1)))");
}

TEST(Predicate, ContainsNegation) {
  EXPECT_FALSE(Predicate::True().ContainsNegation());
  EXPECT_FALSE(Predicate::DstPort(80).ContainsNegation());
  EXPECT_FALSE(
      (Predicate::DstPort(80) || Predicate::InPort(1)).ContainsNegation());
  EXPECT_TRUE((!Predicate::DstPort(80)).ContainsNegation());
  EXPECT_TRUE((Predicate::InPort(1) && (Predicate::DstPort(80) ||
                                        !Predicate::SrcIp(Pfx("10.0.0.0/8"))))
                  .ContainsNegation());
  // Double negation folds away, so no Not node remains.
  EXPECT_FALSE((!!Predicate::DstPort(80)).ContainsNegation());
  // !True folds to False: also positive.
  EXPECT_FALSE((!Predicate::True()).ContainsNegation());
}

TEST(Predicate, DeMorganSemantics) {
  PacketHeader h = WebPacket();
  auto a = Predicate::DstPort(80);
  auto b = Predicate::InPort(2);
  EXPECT_EQ((!(a || b)).Eval(h), ((!a) && (!b)).Eval(h));
  EXPECT_EQ((!(a && b)).Eval(h), ((!a) || (!b)).Eval(h));
}

}  // namespace
}  // namespace sdx::policy
