// sdxmon: operator CLI for the SDX observability exports.
//
//   sdxmon print <file>                   pretty-print a journal JSONL or a
//                                         BENCH_*.metrics.json snapshot
//                                         (format auto-detected)
//   sdxmon tail  <journal.jsonl> [--since=SEQ]
//                                         events with seq >= SEQ, plus a gap
//                                         warning when the ring overwrote
//                                         events the cursor never saw
//   sdxmon chain <journal.jsonl> <update-id>
//                                         the causal chain of one update:
//                                         every event carrying its id, in
//                                         order, with a per-stage summary
//   sdxmon diff  <before.json> <after.json> [threshold flags]
//                                         bench-metrics regression differ;
//                                         exits 1 when a threshold trips
//   sdxmon health <health.json>           renders a HealthReport export;
//                                         exits 1 on "degraded" status (the
//                                         CI smoke step relies on this)
//   sdxmon flows <flows.jsonl> [--top=N]  renders FlowRecorder JSONL: top-N
//                                         flows by estimated bytes + totals
//   sdxmon top <file> [--refresh=S] [--iterations=N]
//                                         live dashboard: convergence
//                                         percentiles, batch depth, drops,
//                                         flap leaders. Input is a
//                                         BENCH_*.timeseries.json (latest
//                                         sample) or a journal JSONL
//                                         (recomputed from events); with
//                                         --iterations>1 the file is
//                                         re-read every --refresh seconds
//   sdxmon convergence <journal.jsonl> [--update=ID] [--top=N]
//                                         per-update convergence breakdown
//                                         (ingest -> begin -> settle) from
//                                         the journal provenance chain
//
// diff flags (defaults in obs/bench_diff.h):
//   --max-counter-rel=R  --min-counter-abs=N
//   --max-batch-counter-rel=R  --min-batch-counter-abs=N
//     ("batch."-prefixed ingest-pipeline tallies get their own, tighter,
//      band: they are near-deterministic on a fixed workload)
//   --max-p50-ratio=R --max-p95-ratio=R --max-p99-ratio=R
//   --noise-floor-us=U
//   --max-convergence-p99=S  --max-convergence-overhead=R
//     (absolute bands: after-side convergence p99 ceiling in seconds, and
//      the convergence.overhead_ratio gauge budget)
//   --min-fastpath-speedup=R  --min-decision-speedup=R
//     (absolute gauge floors: compiled-classifier speedup and the sharded
//      decision-pass speedup measured by fig10 part (c); the decision
//      floor is off by default — core-count dependent)
//   --min-rule-reduction=R
//     (absolute gauge floor on rules.isdx_reduction — the legacy/encoded
//      flow-rule ratio measured by fig7's iSDX column; off by default,
//      the CI bench lane pins it)
//
// Exit codes: 0 ok, 1 regression detected (diff/health only), 2
// usage/IO/parse.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/bench_diff.h"
#include "obs/journal.h"
#include "obs/json.h"

namespace {

using sdx::obs::JournalEvent;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

int Usage() {
  std::cerr <<
      "usage: sdxmon <command> [args]\n"
      "  print <file>                        pretty-print journal JSONL or\n"
      "                                      metrics JSON (auto-detected)\n"
      "  tail  <journal.jsonl> [--since=SEQ] events from seq SEQ onward\n"
      "  chain <journal.jsonl> <update-id>   causal chain of one update\n"
      "  diff  <before.json> <after.json>    bench regression differ\n"
      "        [--max-counter-rel=R] [--min-counter-abs=N]\n"
      "        [--max-batch-counter-rel=R] [--min-batch-counter-abs=N]\n"
      "        [--max-p50-ratio=R] [--max-p95-ratio=R] [--max-p99-ratio=R]\n"
      "        [--noise-floor-us=U] [--max-telemetry-overhead=R]\n"
      "        [--min-fastpath-speedup=R] [--min-decision-speedup=R]\n"
      "        [--min-rule-reduction=R]\n"
      "        [--max-convergence-p99=S]\n"
      "        [--max-convergence-overhead=R]\n"
      "  health <health.json|timeseries.json> render a health snapshot (exit\n"
      "                                      1 on degraded), or — for a\n"
      "                                      timeseries doc — the degraded\n"
      "                                      intervals over its window\n"
      "  flows <flows.jsonl> [--top=N]       render sampled flow records\n"
      "  top <timeseries.json|journal.jsonl> live convergence/ingest\n"
      "      [--refresh=S] [--iterations=N]  dashboard; re-reads the file\n"
      "                                      every S seconds (default 1)\n"
      "  convergence <journal.jsonl>         per-update latency breakdown\n"
      "      [--update=ID] [--top=N]         from the provenance chain\n";
  return kExitUsage;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --since=SEQ style flag; returns false when `arg` does not start with key.
bool FlagValue(const std::string& arg, const std::string& key,
               std::string* out) {
  if (arg.rfind(key + "=", 0) != 0) return false;
  *out = arg.substr(key.size() + 1);
  return true;
}

std::string FormatEvent(const JournalEvent& e) {
  char head[96];
  std::snprintf(head, sizeof(head), "%8llu  %10.6fs  u=%-6llu  %-20s",
                static_cast<unsigned long long>(e.seq), e.seconds,
                static_cast<unsigned long long>(e.update_id),
                sdx::obs::JournalEventTypeName(e.type));
  std::ostringstream os;
  os << head << " [" << e.arg0 << ", " << e.arg1 << ", " << e.arg2 << "]";
  if (!e.detail.empty()) os << "  " << e.detail;
  return os.str();
}

void PrintEvents(const std::vector<JournalEvent>& events) {
  std::cout << "     seq          ts  update    type                 "
               "[arg0, arg1, arg2]  detail\n";
  for (const JournalEvent& e : events) std::cout << FormatEvent(e) << "\n";
}

// A journal file is JSONL: its first non-blank line is an object with
// "seq" and "type" members. Everything else is treated as a metrics
// snapshot.
bool LooksLikeJournal(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      sdx::obs::json::Value v = sdx::obs::json::Parse(line);
      return v.is_object() && v.Find("seq") != nullptr &&
             v.Find("type") != nullptr;
    } catch (const std::exception&) {
      return false;
    }
  }
  return false;
}

void PrintMetrics(const sdx::obs::json::Value& doc) {
  const auto* counters = doc.Find("counters");
  const auto* gauges = doc.Find("gauges");
  const auto* histograms = doc.Find("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr) {
    throw std::runtime_error("not a metrics snapshot (missing sections)");
  }
  std::cout << "counters:\n";
  for (const auto& [name, value] : counters->object) {
    std::cout << "  " << name << " = " << sdx::obs::json::Number(value.number)
              << "\n";
  }
  std::cout << "gauges:\n";
  for (const auto& [name, value] : gauges->object) {
    std::cout << "  " << name << " = " << sdx::obs::json::Number(value.number)
              << "\n";
  }
  std::cout << "histograms:\n";
  for (const auto& [name, h] : histograms->object) {
    std::cout << "  " << name << "  count=" << h.NumberAt("count")
              << " p50=" << sdx::obs::json::Number(h.NumberAt("p50"))
              << " p95=" << sdx::obs::json::Number(h.NumberAt("p95"))
              << " p99=" << sdx::obs::json::Number(h.NumberAt("p99"))
              << " max=" << sdx::obs::json::Number(h.NumberAt("max")) << "\n";
  }
}

int CmdPrint(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  const std::string text = ReadFile(args[0]);
  if (LooksLikeJournal(text)) {
    PrintEvents(sdx::obs::Journal::FromJsonl(text));
  } else {
    PrintMetrics(sdx::obs::json::Parse(text));
  }
  return kExitOk;
}

int CmdTail(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return Usage();
  std::uint64_t since = 0;
  if (args.size() == 2) {
    std::string value;
    if (!FlagValue(args[1], "--since", &value)) return Usage();
    since = std::stoull(value);
  }
  std::vector<JournalEvent> events =
      sdx::obs::Journal::FromJsonl(ReadFile(args[0]));
  std::vector<JournalEvent> selected;
  for (const JournalEvent& e : events) {
    if (e.seq >= since) selected.push_back(e);
  }
  if (!selected.empty() && since > 0 && selected.front().seq > since) {
    std::cout << "warning: " << (selected.front().seq - since)
              << " event(s) between seq " << since << " and "
              << selected.front().seq << " were overwritten\n";
  }
  PrintEvents(selected);
  return kExitOk;
}

int CmdChain(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  const std::uint64_t update_id = std::stoull(args[1]);
  std::vector<JournalEvent> events =
      sdx::obs::Journal::FromJsonl(ReadFile(args[0]));
  std::vector<JournalEvent> chain;
  for (const JournalEvent& e : events) {
    if (e.update_id == update_id) chain.push_back(e);
  }
  if (chain.empty()) {
    std::cout << "update " << update_id << ": no events (unknown id, or the "
              << "ring overwrote its window)\n";
    return kExitOk;
  }
  std::cout << "update " << update_id << ": " << chain.size()
            << " event(s) over "
            << sdx::obs::json::Number(chain.back().seconds -
                                      chain.front().seconds)
            << "s\n";
  PrintEvents(chain);
  std::map<std::string, std::size_t> by_type;
  for (const JournalEvent& e : chain) {
    ++by_type[sdx::obs::JournalEventTypeName(e.type)];
  }
  std::cout << "stages:";
  for (const auto& [name, count] : by_type) {
    std::cout << " " << name << "=" << count;
  }
  std::cout << "\n";
  return kExitOk;
}

int CmdDiff(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  sdx::obs::BenchDiffOptions options;
  for (std::size_t i = 2; i < args.size(); ++i) {
    std::string value;
    if (FlagValue(args[i], "--max-counter-rel", &value)) {
      options.max_counter_rel = std::stod(value);
    } else if (FlagValue(args[i], "--min-counter-abs", &value)) {
      options.min_counter_abs = std::stod(value);
    } else if (FlagValue(args[i], "--max-batch-counter-rel", &value)) {
      options.max_batch_counter_rel = std::stod(value);
    } else if (FlagValue(args[i], "--min-batch-counter-abs", &value)) {
      options.min_batch_counter_abs = std::stod(value);
    } else if (FlagValue(args[i], "--max-p50-ratio", &value)) {
      options.max_p50_ratio = std::stod(value);
    } else if (FlagValue(args[i], "--max-p95-ratio", &value)) {
      options.max_p95_ratio = std::stod(value);
    } else if (FlagValue(args[i], "--max-p99-ratio", &value)) {
      options.max_p99_ratio = std::stod(value);
    } else if (FlagValue(args[i], "--noise-floor-us", &value)) {
      options.noise_floor_seconds = std::stod(value) * 1e-6;
    } else if (FlagValue(args[i], "--max-telemetry-overhead", &value)) {
      options.max_telemetry_overhead = std::stod(value);
    } else if (FlagValue(args[i], "--min-fastpath-speedup", &value)) {
      options.min_fastpath_speedup = std::stod(value);
    } else if (FlagValue(args[i], "--min-decision-speedup", &value)) {
      options.min_decision_speedup = std::stod(value);
    } else if (FlagValue(args[i], "--min-rule-reduction", &value)) {
      options.min_rule_reduction = std::stod(value);
    } else if (FlagValue(args[i], "--max-convergence-p99", &value)) {
      options.max_convergence_p99_seconds = std::stod(value);
    } else if (FlagValue(args[i], "--max-convergence-overhead", &value)) {
      options.max_convergence_overhead = std::stod(value);
    } else {
      return Usage();
    }
  }
  sdx::obs::BenchDiff diff = sdx::obs::DiffMetrics(
      sdx::obs::json::Parse(ReadFile(args[0])),
      sdx::obs::json::Parse(ReadFile(args[1])), options);
  std::cout << diff.Render();
  return diff.regression ? kExitRegression : kExitOk;
}

// ---------------------------------------------------------------------------
// Per-update convergence spans recomputed from a journal dump. Mirrors the
// in-process ConvergenceTracker semantics (obs/convergence.h): the ingest
// stamp is the first kUpdateEnqueued/kBgpSessionRx event carrying the id,
// falling back to kBgpUpdateBegin for updates that bypassed both the
// session and the queue (ApplyBgpUpdate's batch-of-one path). An id whose
// ingest stamp the ring overwrote entirely is reported as truncated,
// never guessed.
struct UpdateSpan {
  std::uint64_t id = 0;
  std::uint64_t from_as = 0;
  double ingest = -1.0;   // first enqueue/session-rx timestamp
  double begin = -1.0;    // first kBgpUpdateBegin timestamp
  double last = 0.0;      // last event carrying the id
  std::size_t events = 0;
  bool coalesced = false;

  double ingest_or_begin() const { return ingest >= 0.0 ? ingest : begin; }
  bool truncated() const { return ingest_or_begin() < 0.0; }
  double e2e() const {
    return truncated() ? 0.0 : last - ingest_or_begin();
  }
  double queue_wait() const {
    if (truncated()) return 0.0;
    const double settle = begin >= 0.0 ? begin : last;
    const double start = ingest_or_begin();
    return settle > start ? settle - start : 0.0;
  }
};

std::vector<UpdateSpan> SpansFromJournal(
    const std::vector<JournalEvent>& events) {
  using sdx::obs::JournalEventType;
  std::map<std::uint64_t, UpdateSpan> by_id;
  for (const JournalEvent& e : events) {
    if (e.update_id == 0) continue;
    UpdateSpan& s = by_id[e.update_id];
    s.id = e.update_id;
    ++s.events;
    s.last = std::max(s.last, e.seconds);
    switch (e.type) {
      case JournalEventType::kUpdateEnqueued:
      case JournalEventType::kBgpSessionRx:
        if (s.ingest < 0.0) s.ingest = e.seconds;
        if (s.from_as == 0) s.from_as = e.arg0;
        break;
      case JournalEventType::kBgpUpdateBegin:
        if (s.begin < 0.0) s.begin = e.seconds;
        if (s.from_as == 0) s.from_as = e.arg0;
        break;
      case JournalEventType::kUpdateCoalesced:
        s.coalesced = true;
        break;
      default:
        break;
    }
  }
  std::vector<UpdateSpan> spans;
  spans.reserve(by_id.size());
  for (auto& [id, span] : by_id) spans.push_back(span);
  return spans;
}

// Nearest-rank percentile over an ascending-sorted vector.
double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(q * (sorted.size() - 1));
  return sorted[std::min(rank, sorted.size() - 1)];
}

int CmdConvergence(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 3) return Usage();
  std::uint64_t only_update = 0;
  std::size_t top = 20;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string value;
    if (FlagValue(args[i], "--update", &value)) {
      only_update = std::stoull(value);
    } else if (FlagValue(args[i], "--top", &value)) {
      top = std::stoull(value);
    } else {
      return Usage();
    }
  }
  std::vector<UpdateSpan> spans =
      SpansFromJournal(sdx::obs::Journal::FromJsonl(ReadFile(args[0])));
  if (only_update != 0) {
    spans.erase(std::remove_if(spans.begin(), spans.end(),
                               [only_update](const UpdateSpan& s) {
                                 return s.id != only_update;
                               }),
                spans.end());
    if (spans.empty()) {
      std::cout << "update " << only_update
                << ": no events (unknown id, or the ring overwrote its "
                << "window)\n";
      return kExitOk;
    }
  }
  std::size_t truncated = 0, coalesced = 0;
  std::vector<double> e2e, waits;
  for (const UpdateSpan& s : spans) {
    if (s.truncated()) {
      ++truncated;
      continue;
    }
    if (s.coalesced) ++coalesced;
    e2e.push_back(s.e2e());
    waits.push_back(s.queue_wait());
  }
  std::sort(e2e.begin(), e2e.end());
  std::sort(waits.begin(), waits.end());
  std::cout << spans.size() << " update(s): " << e2e.size() << " tracked, "
            << truncated << " chain-truncated, " << coalesced
            << " coalesced\n";
  if (!e2e.empty()) {
    std::cout << "e2e:        p50="
              << sdx::obs::json::Number(SortedPercentile(e2e, 0.50))
              << "s p95="
              << sdx::obs::json::Number(SortedPercentile(e2e, 0.95))
              << "s p99="
              << sdx::obs::json::Number(SortedPercentile(e2e, 0.99))
              << "s max=" << sdx::obs::json::Number(e2e.back()) << "s\n";
    std::cout << "queue_wait: p50="
              << sdx::obs::json::Number(SortedPercentile(waits, 0.50))
              << "s p95="
              << sdx::obs::json::Number(SortedPercentile(waits, 0.95))
              << "s p99="
              << sdx::obs::json::Number(SortedPercentile(waits, 0.99))
              << "s max=" << sdx::obs::json::Number(waits.back()) << "s\n";
  }
  std::sort(spans.begin(), spans.end(),
            [](const UpdateSpan& a, const UpdateSpan& b) {
              if (a.truncated() != b.truncated()) return b.truncated();
              if (a.e2e() != b.e2e()) return a.e2e() > b.e2e();
              return a.id < b.id;
            });
  std::cout << "  update      from_as    ingest      begin     settle      "
               "queue        e2e  events  note\n";
  for (std::size_t i = 0; i < spans.size() && i < top; ++i) {
    const UpdateSpan& s = spans[i];
    char buf[200];
    if (s.truncated()) {
      std::snprintf(buf, sizeof(buf),
                    "%8llu  %9llu         --  %9.6f  %9.6f         --         "
                    "--  %6zu  chain-truncated",
                    static_cast<unsigned long long>(s.id),
                    static_cast<unsigned long long>(s.from_as),
                    s.begin >= 0.0 ? s.begin : s.last, s.last, s.events);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%8llu  %9llu  %9.6f  %9.6f  %9.6f  %9.6f  %9.6f  %6zu  %s",
                    static_cast<unsigned long long>(s.id),
                    static_cast<unsigned long long>(s.from_as),
                    s.ingest_or_begin(),
                    s.begin >= 0.0 ? s.begin : s.last, s.last, s.queue_wait(),
                    s.e2e(), s.events, s.coalesced ? "coalesced" : "");
    }
    std::cout << buf << "\n";
  }
  if (spans.size() > top) {
    std::cout << "  ... " << (spans.size() - top) << " more (--top=N)\n";
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// sdxmon top: one dashboard frame. Timeseries documents render their most
// recent sample; journal dumps recompute the same figures from events.

double ValueOr(const std::map<std::string, sdx::obs::json::Value>& values,
               const std::string& name, double fallback) {
  auto it = values.find(name);
  return it != values.end() ? it->second.number : fallback;
}

bool HasValue(const std::map<std::string, sdx::obs::json::Value>& values,
              const std::string& name) {
  return values.find(name) != values.end();
}

void RenderTopFromTimeSeries(const sdx::obs::json::Value& doc) {
  const auto* samples = doc.Find("samples");
  if (samples == nullptr || samples->array.empty()) {
    std::cout << "timeseries: no samples yet\n";
    return;
  }
  const auto& sample = samples->array.back();
  const auto* values = sample.Find("values");
  if (values == nullptr) {
    throw std::runtime_error("timeseries sample missing \"values\"");
  }
  const auto& v = values->object;
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "sdxmon top  |  sample %zu/%zu  t=%.3fs  interval=%gs\n",
                samples->array.size(), samples->array.size(),
                sample.NumberAt("t"), doc.NumberAt("interval_seconds"));
  std::cout << buf;
  const char* kSegments[] = {"e2e", "queue_wait", "decision", "compile",
                             "flush"};
  std::cout << "convergence (seconds):\n";
  std::cout << "  segment           p50          p95          p99         "
               "max\n";
  bool any_segment = false;
  for (const char* segment : kSegments) {
    const std::string base = std::string("convergence.") + segment;
    if (!HasValue(v, base + ".p50")) continue;
    any_segment = true;
    std::snprintf(buf, sizeof(buf), "  %-11s %11.6f  %11.6f  %11.6f  %11.6f\n",
                  segment, ValueOr(v, base + ".p50", 0.0),
                  ValueOr(v, base + ".p95", 0.0),
                  ValueOr(v, base + ".p99", 0.0),
                  ValueOr(v, base + ".max", 0.0));
    std::cout << buf;
  }
  if (!any_segment) {
    std::cout << "  (no convergence tracking in this series)\n";
  } else {
    std::snprintf(buf, sizeof(buf),
                  "  tracked=%.0f chain_truncated=%.0f coalesced=%.0f "
                  "pending=%.0f\n",
                  ValueOr(v, "convergence.tracked", 0.0),
                  ValueOr(v, "convergence.chain_truncated", 0.0),
                  ValueOr(v, "convergence.coalesced_attributed", 0.0),
                  ValueOr(v, "convergence.pending", 0.0));
    std::cout << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "ingest: queue_depth=%.0f batch.depth p95=%.1f "
                "batches=%.0f coalesced=%.0f\n",
                ValueOr(v, "health.queue_depth", 0.0),
                ValueOr(v, "batch.depth.p95", 0.0),
                ValueOr(v, "batch.count", 0.0),
                ValueOr(v, "batch.coalesced", 0.0));
  std::cout << buf;
  std::snprintf(buf, sizeof(buf),
                "health: degraded=%.0f batch_lag=%gs drops=%.0f "
                "(table_miss=%.0f)\n",
                ValueOr(v, "health.degraded", 0.0),
                ValueOr(v, "health.batch_lag_seconds", 0.0),
                ValueOr(v, "drop.total", 0.0),
                ValueOr(v, "drop.table_miss", 0.0));
  std::cout << buf;
  // Flap leaders: the tracker publishes its worst-offender table as
  // convergence.as<N>.updates / .worst_seconds pairs.
  std::vector<std::pair<std::string, double>> leaders;
  const std::string prefix = "convergence.as";
  const std::string suffix = ".updates";
  for (const auto& [name, value] : v) {
    if (name.rfind(prefix, 0) == 0 &&
        name.size() > prefix.size() + suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      leaders.emplace_back(
          name.substr(prefix.size(),
                      name.size() - prefix.size() - suffix.size()),
          value.number);
    }
  }
  if (!leaders.empty()) {
    std::sort(leaders.begin(), leaders.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::cout << "flap leaders:\n";
    for (const auto& [as, updates] : leaders) {
      std::snprintf(buf, sizeof(buf), "  as%-8s %6.0f update(s)  worst=%gs\n",
                    as.c_str(), updates,
                    ValueOr(v, prefix + as + ".worst_seconds", 0.0));
      std::cout << buf;
    }
  }
}

void RenderTopFromJournal(const std::vector<JournalEvent>& events) {
  std::vector<UpdateSpan> spans = SpansFromJournal(events);
  std::size_t truncated = 0;
  std::vector<double> e2e, waits;
  std::map<std::uint64_t, std::pair<std::size_t, double>> by_as;
  for (const UpdateSpan& s : spans) {
    if (s.truncated()) {
      ++truncated;
      continue;
    }
    e2e.push_back(s.e2e());
    waits.push_back(s.queue_wait());
    auto& entry = by_as[s.from_as];
    ++entry.first;
    entry.second = std::max(entry.second, s.e2e());
  }
  std::sort(e2e.begin(), e2e.end());
  std::sort(waits.begin(), waits.end());
  std::cout << "sdxmon top  |  journal mode: " << events.size()
            << " event(s), " << spans.size() << " update(s), " << truncated
            << " chain-truncated\n";
  std::cout << "convergence (seconds):\n";
  std::cout << "  segment           p50          p95          p99         "
               "max\n";
  char buf[200];
  const auto row = [&](const char* name, const std::vector<double>& sorted) {
    std::snprintf(buf, sizeof(buf), "  %-11s %11.6f  %11.6f  %11.6f  %11.6f\n",
                  name, SortedPercentile(sorted, 0.50),
                  SortedPercentile(sorted, 0.95),
                  SortedPercentile(sorted, 0.99),
                  sorted.empty() ? 0.0 : sorted.back());
    std::cout << buf;
  };
  row("e2e", e2e);
  row("queue_wait", waits);
  if (!by_as.empty()) {
    std::vector<std::pair<std::uint64_t, std::pair<std::size_t, double>>>
        leaders(by_as.begin(), by_as.end());
    std::sort(leaders.begin(), leaders.end(), [](const auto& a,
                                                 const auto& b) {
      return a.second.first > b.second.first;
    });
    std::cout << "flap leaders:\n";
    for (std::size_t i = 0; i < leaders.size() && i < 8; ++i) {
      std::snprintf(buf, sizeof(buf),
                    "  as%-8llu %6zu update(s)  worst=%gs\n",
                    static_cast<unsigned long long>(leaders[i].first),
                    leaders[i].second.first, leaders[i].second.second);
      std::cout << buf;
    }
  }
}

int CmdTop(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 3) return Usage();
  double refresh_seconds = 1.0;
  std::size_t iterations = 1;
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::string value;
    if (FlagValue(args[i], "--refresh", &value)) {
      refresh_seconds = std::stod(value);
    } else if (FlagValue(args[i], "--iterations", &value)) {
      iterations = std::stoull(value);
    } else {
      return Usage();
    }
  }
  if (iterations == 0) iterations = 1;
  for (std::size_t frame = 0; frame < iterations; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(refresh_seconds));
      std::cout << "\x1b[2J\x1b[H";  // clear screen, home cursor
    }
    // Re-read each frame: the producer may still be appending.
    const std::string text = ReadFile(args[0]);
    if (LooksLikeJournal(text)) {
      RenderTopFromJournal(sdx::obs::Journal::FromJsonl(text));
    } else {
      RenderTopFromTimeSeries(sdx::obs::json::Parse(text));
    }
    std::cout.flush();
  }
  return kExitOk;
}

// ---------------------------------------------------------------------------
// Degraded-interval scan over a timeseries document: walks health.degraded
// across samples and reports each contiguous degraded stretch (start time
// and duration). Exits 1 when the final sample is still degraded.
int HealthFromTimeSeries(const sdx::obs::json::Value& doc) {
  const auto* samples = doc.Find("samples");
  struct Interval {
    double start = 0.0;
    double end = 0.0;
    bool open = false;
  };
  std::vector<Interval> intervals;
  std::size_t with_verdict = 0;
  double first_t = 0.0, last_t = 0.0;
  bool degraded_now = false;
  for (std::size_t i = 0; i < samples->array.size(); ++i) {
    const auto& sample = samples->array[i];
    const double t = sample.NumberAt("t");
    if (i == 0) first_t = t;
    last_t = t;
    const auto* values = sample.Find("values");
    if (values == nullptr) continue;
    const auto it = values->object.find("health.degraded");
    if (it == values->object.end()) continue;
    ++with_verdict;
    const bool degraded = it->second.number != 0.0;
    if (degraded && !degraded_now) {
      intervals.push_back({t, t, true});
    } else if (degraded) {
      intervals.back().end = t;
    } else if (degraded_now) {
      intervals.back().open = false;
    }
    degraded_now = degraded;
  }
  std::cout << "timeseries health: " << samples->array.size()
            << " sample(s) over "
            << sdx::obs::json::Number(last_t - first_t) << "s ("
            << with_verdict << " with a health verdict)\n";
  if (intervals.empty()) {
    std::cout << "status: healthy for the whole window\n";
    return kExitOk;
  }
  std::cout << intervals.size() << " degraded interval(s):\n";
  for (const Interval& interval : intervals) {
    std::cout << "  t=" << sdx::obs::json::Number(interval.start)
              << "s for " << sdx::obs::json::Number(
                                 interval.end - interval.start)
              << "s" << (interval.open && degraded_now &&
                                 interval.end == last_t
                             ? "  (still degraded at end of window)"
                             : "")
              << "\n";
  }
  return degraded_now ? kExitRegression : kExitOk;
}

int CmdHealth(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  const sdx::obs::json::Value doc =
      sdx::obs::json::Parse(ReadFile(args[0]));
  // A timeseries export (interval_seconds + samples) gets the degraded-
  // interval scan; a HealthReport export gets the one-shot rendering.
  if (doc.Find("samples") != nullptr) return HealthFromTimeSeries(doc);
  const auto* status = doc.Find("status");
  if (status == nullptr || !status->is_string()) {
    throw std::runtime_error("not a health snapshot (missing \"status\")");
  }
  std::cout << "status: " << status->string << "\n";
  const auto* reasons = doc.Find("reasons");
  if (reasons != nullptr && !reasons->array.empty()) {
    for (const auto& reason : reasons->array) {
      std::cout << "  reason: " << reason.string << "\n";
    }
  }
  std::cout << "ingest:   queue_depth=" << doc.NumberAt("queue_depth")
            << " batch_lag=" << sdx::obs::json::Number(
                                   doc.NumberAt("batch_lag_seconds"))
            << "s updates_processed=" << doc.NumberAt("updates_processed")
            << "\n";
  std::cout << "last:     decision="
            << sdx::obs::json::Number(doc.NumberAt("last_decision_seconds"))
            << "s compile="
            << sdx::obs::json::Number(doc.NumberAt("last_compile_seconds"))
            << "s flush="
            << sdx::obs::json::Number(doc.NumberAt("last_flush_seconds"))
            << "s\n";
  std::cout << "sizes:    rib_prefixes=" << doc.NumberAt("rib_prefixes")
            << " flow_table_rules=" << doc.NumberAt("flow_table_rules")
            << " participants=" << doc.NumberAt("participants") << "\n";
  std::cout << "drops:    total=" << doc.NumberAt("total_drops")
            << " table_miss=" << doc.NumberAt("table_miss_drops") << "\n";
  const auto* flaps = doc.Find("flap_rates");
  if (flaps != nullptr && !flaps->object.empty()) {
    std::cout << "flap rates (updates/s):\n";
    for (const auto& [as, rate] : flaps->object) {
      std::cout << "  as" << as << " = "
                << sdx::obs::json::Number(rate.number) << "\n";
    }
  }
  return status->string == "degraded" ? kExitRegression : kExitOk;
}

int CmdFlows(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return Usage();
  std::size_t top = 20;
  if (args.size() == 2) {
    std::string value;
    if (!FlagValue(args[1], "--top", &value)) return Usage();
    top = std::stoull(value);
  }
  std::istringstream is(ReadFile(args[0]));
  std::string line;
  std::vector<sdx::obs::json::Value> records;
  std::uint64_t total_est_packets = 0, total_est_bytes = 0;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    records.push_back(sdx::obs::json::Parse(line));
    total_est_packets +=
        static_cast<std::uint64_t>(records.back().NumberAt("est_packets"));
    total_est_bytes +=
        static_cast<std::uint64_t>(records.back().NumberAt("est_bytes"));
  }
  std::sort(records.begin(), records.end(),
            [](const sdx::obs::json::Value& a, const sdx::obs::json::Value& b) {
              return a.NumberAt("est_bytes") > b.NumberAt("est_bytes");
            });
  std::cout << records.size() << " flow record(s), est "
            << total_est_packets << " packets / " << total_est_bytes
            << " bytes total\n";
  std::cout << "  in->out  src_as->dst_as      cookie  prio      "
               "est_pkts     est_bytes  close\n";
  for (std::size_t i = 0; i < records.size() && i < top; ++i) {
    const auto& r = records[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%5.0f->%-5.0f %6.0f->%-8.0f %9.0f  %4.0f  %12.0f  "
                  "%12.0f  %s",
                  r.NumberAt("in_port"), r.NumberAt("out_port"),
                  r.NumberAt("src_as"), r.NumberAt("dst_as"),
                  r.NumberAt("cookie"), r.NumberAt("priority"),
                  r.NumberAt("est_packets"), r.NumberAt("est_bytes"),
                  r.StringAt("close").c_str());
    std::cout << buf << "\n";
  }
  if (records.size() > top) {
    std::cout << "  ... " << (records.size() - top) << " more\n";
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "print") return CmdPrint(args);
    if (command == "tail") return CmdTail(args);
    if (command == "chain") return CmdChain(args);
    if (command == "diff") return CmdDiff(args);
    if (command == "health") return CmdHealth(args);
    if (command == "flows") return CmdFlows(args);
    if (command == "top") return CmdTop(args);
    if (command == "convergence") return CmdConvergence(args);
  } catch (const std::exception& e) {
    std::cerr << "sdxmon: " << e.what() << "\n";
    return kExitUsage;
  }
  return Usage();
}
