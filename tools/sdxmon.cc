// sdxmon: operator CLI for the SDX observability exports.
//
//   sdxmon print <file>                   pretty-print a journal JSONL or a
//                                         BENCH_*.metrics.json snapshot
//                                         (format auto-detected)
//   sdxmon tail  <journal.jsonl> [--since=SEQ]
//                                         events with seq >= SEQ, plus a gap
//                                         warning when the ring overwrote
//                                         events the cursor never saw
//   sdxmon chain <journal.jsonl> <update-id>
//                                         the causal chain of one update:
//                                         every event carrying its id, in
//                                         order, with a per-stage summary
//   sdxmon diff  <before.json> <after.json> [threshold flags]
//                                         bench-metrics regression differ;
//                                         exits 1 when a threshold trips
//   sdxmon health <health.json>           renders a HealthReport export;
//                                         exits 1 on "degraded" status (the
//                                         CI smoke step relies on this)
//   sdxmon flows <flows.jsonl> [--top=N]  renders FlowRecorder JSONL: top-N
//                                         flows by estimated bytes + totals
//
// diff flags (defaults in obs/bench_diff.h):
//   --max-counter-rel=R  --min-counter-abs=N
//   --max-batch-counter-rel=R  --min-batch-counter-abs=N
//     ("batch."-prefixed ingest-pipeline tallies get their own, tighter,
//      band: they are near-deterministic on a fixed workload)
//   --max-p50-ratio=R --max-p95-ratio=R --max-p99-ratio=R
//   --noise-floor-us=U
//
// Exit codes: 0 ok, 1 regression detected (diff only), 2 usage/IO/parse.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_diff.h"
#include "obs/journal.h"
#include "obs/json.h"

namespace {

using sdx::obs::JournalEvent;

constexpr int kExitOk = 0;
constexpr int kExitRegression = 1;
constexpr int kExitUsage = 2;

int Usage() {
  std::cerr <<
      "usage: sdxmon <command> [args]\n"
      "  print <file>                        pretty-print journal JSONL or\n"
      "                                      metrics JSON (auto-detected)\n"
      "  tail  <journal.jsonl> [--since=SEQ] events from seq SEQ onward\n"
      "  chain <journal.jsonl> <update-id>   causal chain of one update\n"
      "  diff  <before.json> <after.json>    bench regression differ\n"
      "        [--max-counter-rel=R] [--min-counter-abs=N]\n"
      "        [--max-batch-counter-rel=R] [--min-batch-counter-abs=N]\n"
      "        [--max-p50-ratio=R] [--max-p95-ratio=R] [--max-p99-ratio=R]\n"
      "        [--noise-floor-us=U] [--max-telemetry-overhead=R]\n"
      "        [--min-fastpath-speedup=R]\n"
      "  health <health.json>                render a runtime health\n"
      "                                      snapshot; exit 1 on degraded\n"
      "  flows <flows.jsonl> [--top=N]       render sampled flow records\n";
  return kExitUsage;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// --since=SEQ style flag; returns false when `arg` does not start with key.
bool FlagValue(const std::string& arg, const std::string& key,
               std::string* out) {
  if (arg.rfind(key + "=", 0) != 0) return false;
  *out = arg.substr(key.size() + 1);
  return true;
}

std::string FormatEvent(const JournalEvent& e) {
  char head[96];
  std::snprintf(head, sizeof(head), "%8llu  %10.6fs  u=%-6llu  %-20s",
                static_cast<unsigned long long>(e.seq), e.seconds,
                static_cast<unsigned long long>(e.update_id),
                sdx::obs::JournalEventTypeName(e.type));
  std::ostringstream os;
  os << head << " [" << e.arg0 << ", " << e.arg1 << ", " << e.arg2 << "]";
  if (!e.detail.empty()) os << "  " << e.detail;
  return os.str();
}

void PrintEvents(const std::vector<JournalEvent>& events) {
  std::cout << "     seq          ts  update    type                 "
               "[arg0, arg1, arg2]  detail\n";
  for (const JournalEvent& e : events) std::cout << FormatEvent(e) << "\n";
}

// A journal file is JSONL: its first non-blank line is an object with
// "seq" and "type" members. Everything else is treated as a metrics
// snapshot.
bool LooksLikeJournal(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      sdx::obs::json::Value v = sdx::obs::json::Parse(line);
      return v.is_object() && v.Find("seq") != nullptr &&
             v.Find("type") != nullptr;
    } catch (const std::exception&) {
      return false;
    }
  }
  return false;
}

void PrintMetrics(const sdx::obs::json::Value& doc) {
  const auto* counters = doc.Find("counters");
  const auto* gauges = doc.Find("gauges");
  const auto* histograms = doc.Find("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr) {
    throw std::runtime_error("not a metrics snapshot (missing sections)");
  }
  std::cout << "counters:\n";
  for (const auto& [name, value] : counters->object) {
    std::cout << "  " << name << " = " << sdx::obs::json::Number(value.number)
              << "\n";
  }
  std::cout << "gauges:\n";
  for (const auto& [name, value] : gauges->object) {
    std::cout << "  " << name << " = " << sdx::obs::json::Number(value.number)
              << "\n";
  }
  std::cout << "histograms:\n";
  for (const auto& [name, h] : histograms->object) {
    std::cout << "  " << name << "  count=" << h.NumberAt("count")
              << " p50=" << sdx::obs::json::Number(h.NumberAt("p50"))
              << " p95=" << sdx::obs::json::Number(h.NumberAt("p95"))
              << " p99=" << sdx::obs::json::Number(h.NumberAt("p99"))
              << " max=" << sdx::obs::json::Number(h.NumberAt("max")) << "\n";
  }
}

int CmdPrint(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  const std::string text = ReadFile(args[0]);
  if (LooksLikeJournal(text)) {
    PrintEvents(sdx::obs::Journal::FromJsonl(text));
  } else {
    PrintMetrics(sdx::obs::json::Parse(text));
  }
  return kExitOk;
}

int CmdTail(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return Usage();
  std::uint64_t since = 0;
  if (args.size() == 2) {
    std::string value;
    if (!FlagValue(args[1], "--since", &value)) return Usage();
    since = std::stoull(value);
  }
  std::vector<JournalEvent> events =
      sdx::obs::Journal::FromJsonl(ReadFile(args[0]));
  std::vector<JournalEvent> selected;
  for (const JournalEvent& e : events) {
    if (e.seq >= since) selected.push_back(e);
  }
  if (!selected.empty() && since > 0 && selected.front().seq > since) {
    std::cout << "warning: " << (selected.front().seq - since)
              << " event(s) between seq " << since << " and "
              << selected.front().seq << " were overwritten\n";
  }
  PrintEvents(selected);
  return kExitOk;
}

int CmdChain(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  const std::uint64_t update_id = std::stoull(args[1]);
  std::vector<JournalEvent> events =
      sdx::obs::Journal::FromJsonl(ReadFile(args[0]));
  std::vector<JournalEvent> chain;
  for (const JournalEvent& e : events) {
    if (e.update_id == update_id) chain.push_back(e);
  }
  if (chain.empty()) {
    std::cout << "update " << update_id << ": no events (unknown id, or the "
              << "ring overwrote its window)\n";
    return kExitOk;
  }
  std::cout << "update " << update_id << ": " << chain.size()
            << " event(s) over "
            << sdx::obs::json::Number(chain.back().seconds -
                                      chain.front().seconds)
            << "s\n";
  PrintEvents(chain);
  std::map<std::string, std::size_t> by_type;
  for (const JournalEvent& e : chain) {
    ++by_type[sdx::obs::JournalEventTypeName(e.type)];
  }
  std::cout << "stages:";
  for (const auto& [name, count] : by_type) {
    std::cout << " " << name << "=" << count;
  }
  std::cout << "\n";
  return kExitOk;
}

int CmdDiff(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  sdx::obs::BenchDiffOptions options;
  for (std::size_t i = 2; i < args.size(); ++i) {
    std::string value;
    if (FlagValue(args[i], "--max-counter-rel", &value)) {
      options.max_counter_rel = std::stod(value);
    } else if (FlagValue(args[i], "--min-counter-abs", &value)) {
      options.min_counter_abs = std::stod(value);
    } else if (FlagValue(args[i], "--max-batch-counter-rel", &value)) {
      options.max_batch_counter_rel = std::stod(value);
    } else if (FlagValue(args[i], "--min-batch-counter-abs", &value)) {
      options.min_batch_counter_abs = std::stod(value);
    } else if (FlagValue(args[i], "--max-p50-ratio", &value)) {
      options.max_p50_ratio = std::stod(value);
    } else if (FlagValue(args[i], "--max-p95-ratio", &value)) {
      options.max_p95_ratio = std::stod(value);
    } else if (FlagValue(args[i], "--max-p99-ratio", &value)) {
      options.max_p99_ratio = std::stod(value);
    } else if (FlagValue(args[i], "--noise-floor-us", &value)) {
      options.noise_floor_seconds = std::stod(value) * 1e-6;
    } else if (FlagValue(args[i], "--max-telemetry-overhead", &value)) {
      options.max_telemetry_overhead = std::stod(value);
    } else if (FlagValue(args[i], "--min-fastpath-speedup", &value)) {
      options.min_fastpath_speedup = std::stod(value);
    } else {
      return Usage();
    }
  }
  sdx::obs::BenchDiff diff = sdx::obs::DiffMetrics(
      sdx::obs::json::Parse(ReadFile(args[0])),
      sdx::obs::json::Parse(ReadFile(args[1])), options);
  std::cout << diff.Render();
  return diff.regression ? kExitRegression : kExitOk;
}

int CmdHealth(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  const sdx::obs::json::Value doc =
      sdx::obs::json::Parse(ReadFile(args[0]));
  const auto* status = doc.Find("status");
  if (status == nullptr || !status->is_string()) {
    throw std::runtime_error("not a health snapshot (missing \"status\")");
  }
  std::cout << "status: " << status->string << "\n";
  const auto* reasons = doc.Find("reasons");
  if (reasons != nullptr && !reasons->array.empty()) {
    for (const auto& reason : reasons->array) {
      std::cout << "  reason: " << reason.string << "\n";
    }
  }
  std::cout << "ingest:   queue_depth=" << doc.NumberAt("queue_depth")
            << " batch_lag=" << sdx::obs::json::Number(
                                   doc.NumberAt("batch_lag_seconds"))
            << "s updates_processed=" << doc.NumberAt("updates_processed")
            << "\n";
  std::cout << "last:     decision="
            << sdx::obs::json::Number(doc.NumberAt("last_decision_seconds"))
            << "s compile="
            << sdx::obs::json::Number(doc.NumberAt("last_compile_seconds"))
            << "s flush="
            << sdx::obs::json::Number(doc.NumberAt("last_flush_seconds"))
            << "s\n";
  std::cout << "sizes:    rib_prefixes=" << doc.NumberAt("rib_prefixes")
            << " flow_table_rules=" << doc.NumberAt("flow_table_rules")
            << " participants=" << doc.NumberAt("participants") << "\n";
  std::cout << "drops:    total=" << doc.NumberAt("total_drops")
            << " table_miss=" << doc.NumberAt("table_miss_drops") << "\n";
  const auto* flaps = doc.Find("flap_rates");
  if (flaps != nullptr && !flaps->object.empty()) {
    std::cout << "flap rates (updates/s):\n";
    for (const auto& [as, rate] : flaps->object) {
      std::cout << "  as" << as << " = "
                << sdx::obs::json::Number(rate.number) << "\n";
    }
  }
  return status->string == "degraded" ? kExitRegression : kExitOk;
}

int CmdFlows(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return Usage();
  std::size_t top = 20;
  if (args.size() == 2) {
    std::string value;
    if (!FlagValue(args[1], "--top", &value)) return Usage();
    top = std::stoull(value);
  }
  std::istringstream is(ReadFile(args[0]));
  std::string line;
  std::vector<sdx::obs::json::Value> records;
  std::uint64_t total_est_packets = 0, total_est_bytes = 0;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    records.push_back(sdx::obs::json::Parse(line));
    total_est_packets +=
        static_cast<std::uint64_t>(records.back().NumberAt("est_packets"));
    total_est_bytes +=
        static_cast<std::uint64_t>(records.back().NumberAt("est_bytes"));
  }
  std::sort(records.begin(), records.end(),
            [](const sdx::obs::json::Value& a, const sdx::obs::json::Value& b) {
              return a.NumberAt("est_bytes") > b.NumberAt("est_bytes");
            });
  std::cout << records.size() << " flow record(s), est "
            << total_est_packets << " packets / " << total_est_bytes
            << " bytes total\n";
  std::cout << "  in->out  src_as->dst_as      cookie  prio      "
               "est_pkts     est_bytes  close\n";
  for (std::size_t i = 0; i < records.size() && i < top; ++i) {
    const auto& r = records[i];
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%5.0f->%-5.0f %6.0f->%-8.0f %9.0f  %4.0f  %12.0f  "
                  "%12.0f  %s",
                  r.NumberAt("in_port"), r.NumberAt("out_port"),
                  r.NumberAt("src_as"), r.NumberAt("dst_as"),
                  r.NumberAt("cookie"), r.NumberAt("priority"),
                  r.NumberAt("est_packets"), r.NumberAt("est_bytes"),
                  r.StringAt("close").c_str());
    std::cout << buf << "\n";
  }
  if (records.size() > top) {
    std::cout << "  ... " << (records.size() - top) << " more\n";
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "print") return CmdPrint(args);
    if (command == "tail") return CmdTail(args);
    if (command == "chain") return CmdChain(args);
    if (command == "diff") return CmdDiff(args);
    if (command == "health") return CmdHealth(args);
    if (command == "flows") return CmdFlows(args);
  } catch (const std::exception& e) {
    std::cerr << "sdxmon: " << e.what() << "\n";
    return kExitUsage;
  }
  return Usage();
}
